(** Finite buffers over any {!Sched.t}: budgets + a pluggable drop
    policy.

    The paper's theorems assume infinite buffers; a deployable server
    does not have them. This wrapper holds {e no packets of its own} —
    it gates [enqueue] with a per-flow and/or aggregate budget and,
    when a budget is hit, either rejects the arrival or calls back into
    the discipline's {!Sched.t.evict} to make room. Every lost packet
    is reported through [on_drop] exactly once, so the conservation law
    (enqueued = departed + dropped + backlogged) stays checkable from
    the outside.

    Policies:
    - [Drop_tail]: reject the arriving packet;
    - [Drop_front]: evict the oldest packet — of the arriving flow on a
      per-flow overflow, of the next-to-depart flow ([peek]) on an
      aggregate overflow — then admit the arrival;
    - [Longest_queue]: on aggregate overflow, evict the newest packet
      of the flow with the largest backlog (ties: first-seen flow); a
      per-flow overflow rejects the arrival (the arrival is that flow's
      own newest packet).

    If the discipline cannot evict ({!Sched.no_evict}), eviction
    policies degrade to rejecting the arrival — packets are never lost
    silently. Backlog/size probes read the inner scheduler directly, so
    the admission decision cannot drift from the state it guards. *)

type policy = Drop_tail | Drop_front | Longest_queue

val policy_name : policy -> string

type reason =
  | Rejected  (** the arriving packet itself was refused *)
  | Evicted  (** an already-queued packet was removed to make room *)

val reason_name : reason -> string

type config = {
  per_flow : int option;  (** max queued packets per flow *)
  aggregate : int option;  (** max queued packets in total *)
  policy : policy;
}

val config : ?per_flow:int -> ?aggregate:int -> ?policy:policy -> unit -> config
(** Omitted budgets are infinite; default policy is [Drop_tail].
    @raise Invalid_argument on a non-positive budget. *)

val pp_config : Format.formatter -> config -> unit

type t

val wrap :
  ?on_drop:(now:float -> reason:reason -> Packet.t -> unit) ->
  config ->
  Sched.t ->
  t
(** [on_drop] fires once per lost packet, with the packet actually
    lost (the victim under eviction policies, the arrival otherwise),
    before the triggering arrival is admitted. *)

val sched : t -> Sched.t
(** The buffered view: [enqueue] applies the policy; every other
    operation (including [evict]/[close_flow]) passes through to the
    inner scheduler. Packets flushed by [close_flow] are returned to
    the caller and NOT counted as drops here — the caller decides
    whether a closing flow's backlog is a loss. *)

val drops : t -> int
(** Packets lost to the policy (both reasons). *)

val drops_of : t -> Packet.flow -> int

val admitted : t -> int
