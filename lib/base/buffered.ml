type policy = Drop_tail | Drop_front | Longest_queue

let policy_name = function
  | Drop_tail -> "drop-tail"
  | Drop_front -> "drop-front"
  | Longest_queue -> "longest-queue"

type reason = Rejected | Evicted

let reason_name = function Rejected -> "rejected" | Evicted -> "evicted"

type config = { per_flow : int option; aggregate : int option; policy : policy }

let config ?per_flow ?aggregate ?(policy = Drop_tail) () =
  let check what = function
    | Some n when n <= 0 ->
      invalid_arg (Printf.sprintf "Buffered.config: %s must be positive" what)
    | _ -> ()
  in
  check "per_flow" per_flow;
  check "aggregate" aggregate;
  { per_flow; aggregate; policy }

let pp_config ppf c =
  let lim = function None -> "inf" | Some n -> string_of_int n in
  Format.fprintf ppf "%s/flow=%s/agg=%s" (policy_name c.policy) (lim c.per_flow)
    (lim c.aggregate)

type t = {
  cfg : config;
  inner : Sched.t;
  on_drop : now:float -> reason:reason -> Packet.t -> unit;
  (* flows that ever held a packet: the longest-queue argmax domain.
     Never pruned — churn workloads recycle ids, so the set stays small. *)
  mutable seen : Packet.flow list;
  seen_mem : bool Flow_table.t;
  drop_counts : int Flow_table.t;
  mutable drops : int;
  mutable admitted : int;
}

let wrap ?(on_drop = fun ~now:_ ~reason:_ _ -> ()) cfg inner =
  {
    cfg;
    inner;
    on_drop;
    seen = [];
    seen_mem = Flow_table.create ~default:(fun _ -> false);
    drop_counts = Flow_table.create ~default:(fun _ -> 0);
    drops = 0;
    admitted = 0;
  }

let drops t = t.drops
let admitted t = t.admitted
let drops_of t flow = Flow_table.find t.drop_counts flow

let note_drop t ~now ~reason pkt =
  t.drops <- t.drops + 1;
  Flow_table.set t.drop_counts pkt.Packet.flow
    (Flow_table.find t.drop_counts pkt.Packet.flow + 1);
  t.on_drop ~now ~reason pkt

(* Backlogs come from the inner scheduler itself, not a shadow count:
   the admission decision then cannot disagree with the state it
   guards, whatever the discipline does internally. *)
let longest_queue t =
  List.fold_left
    (fun best f ->
      let b = t.inner.Sched.backlog f in
      match best with
      | Some (_, bb) when bb >= b -> best  (* ties: first-seen flow wins *)
      | _ -> if b > 0 then Some (f, b) else best)
    None t.seen

let admit t ~now pkt =
  t.admitted <- t.admitted + 1;
  let flow = pkt.Packet.flow in
  if not (Flow_table.find t.seen_mem flow) then begin
    Flow_table.set t.seen_mem flow true;
    t.seen <- t.seen @ [ flow ]
  end;
  t.inner.Sched.enqueue ~now pkt

(* One eviction restores the invariant (budget checks fire when the
   backlog is already at the bound, and evict-then-admit is net zero),
   so no loops: every [enqueue] makes at most one policy drop. *)
let enqueue t ~now pkt =
  let flow = pkt.Packet.flow in
  let over_flow =
    match t.cfg.per_flow with
    | Some b -> t.inner.Sched.backlog flow >= b
    | None -> false
  in
  if over_flow then begin
    (* The flow's own budget: only its own queue may pay. Drop-front
       evicts its head and admits; drop-tail and longest-queue reject
       the arrival (the arrival IS the flow's newest packet). *)
    match t.cfg.policy with
    | Drop_front -> (
      match t.inner.Sched.evict ~now Sched.Oldest flow with
      | Some victim ->
        note_drop t ~now ~reason:Evicted victim;
        admit t ~now pkt
      | None -> note_drop t ~now ~reason:Rejected pkt)
    | Drop_tail | Longest_queue -> note_drop t ~now ~reason:Rejected pkt
  end
  else begin
    let over_agg =
      match t.cfg.aggregate with
      | Some b -> t.inner.Sched.size () >= b
      | None -> false
    in
    if not over_agg then admit t ~now pkt
    else begin
      let victim =
        match t.cfg.policy with
        | Drop_tail -> None
        | Drop_front -> (
          (* global drop-front: the next packet the server would send *)
          match t.inner.Sched.peek () with
          | Some head -> t.inner.Sched.evict ~now Sched.Oldest head.Packet.flow
          | None -> None)
        | Longest_queue -> (
          match longest_queue t with
          | Some (f, _) -> t.inner.Sched.evict ~now Sched.Newest f
          | None -> None)
      in
      match victim with
      | Some v ->
        note_drop t ~now ~reason:Evicted v;
        admit t ~now pkt
      | None ->
        (* drop-tail, or the discipline cannot evict: reject instead *)
        note_drop t ~now ~reason:Rejected pkt
    end
  end

let sched t =
  {
    Sched.name = t.inner.Sched.name ^ "+buf";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = t.inner.Sched.dequeue;
    peek = t.inner.Sched.peek;
    size = t.inner.Sched.size;
    backlog = t.inner.Sched.backlog;
    evict = t.inner.Sched.evict;
    close_flow = t.inner.Sched.close_flow;
  }
