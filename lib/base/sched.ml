type victim = Oldest | Newest

type t = {
  name : string;
  enqueue : now:float -> Packet.t -> unit;
  dequeue : now:float -> Packet.t option;
  peek : unit -> Packet.t option;
  size : unit -> int;
  backlog : Packet.flow -> int;
  evict : now:float -> victim -> Packet.flow -> Packet.t option;
  close_flow : now:float -> Packet.flow -> Packet.t list;
}

let is_empty t = t.size () = 0

let drain t ~now =
  let rec loop acc =
    match t.dequeue ~now with None -> List.rev acc | Some p -> loop (p :: acc)
  in
  loop []

let drain_n t ~now n =
  let rec loop k acc =
    if k = 0 then List.rev acc
    else begin
      match t.dequeue ~now with None -> List.rev acc | Some p -> loop (k - 1) (p :: acc)
    end
  in
  loop n []

let no_evict : now:float -> victim -> Packet.flow -> Packet.t option = fun ~now:_ _ _ -> None

let close_via_evict evict ~now flow =
  let rec go acc =
    match evict ~now Oldest flow with None -> List.rev acc | Some p -> go (p :: acc)
  in
  go []
