open Sfq_util
open Sfq_base
open Sfq_netsim

type completion = { flow : Packet.flow; start : float; finish : float; len : int }

type flow_acct = {
  mutable backlog : int;
  mutable opened_at : float;  (* start of the current busy interval *)
  intervals : (float * float) Vec.t;
}

type t = { completions : completion Vec.t; acct : flow_acct Flow_table.t }

let create () =
  {
    completions = Vec.create ();
    acct =
      Flow_table.create ~default:(fun _ ->
          { backlog = 0; opened_at = nan; intervals = Vec.create () });
  }

let note_arrival t ~at flow =
  let a = Flow_table.find t.acct flow in
  if a.backlog = 0 then a.opened_at <- at;
  a.backlog <- a.backlog + 1

let note_completion t ~flow ~start ~finish ~len =
  Vec.push t.completions { flow; start; finish; len };
  let a = Flow_table.find t.acct flow in
  a.backlog <- a.backlog - 1;
  if a.backlog = 0 then Vec.push a.intervals (a.opened_at, finish)

let note_removal t ~at flow =
  let a = Flow_table.find t.acct flow in
  a.backlog <- a.backlog - 1;
  if a.backlog = 0 then Vec.push a.intervals (a.opened_at, at)

let attach server =
  let t = create () in
  let sim = Server.sim server in
  Server.on_inject server (fun p -> note_arrival t ~at:(Sim.now sim) p.Packet.flow);
  Server.on_depart server (fun p ~start ~departed ->
      note_completion t ~flow:p.Packet.flow ~start ~finish:departed ~len:p.Packet.len);
  t

let completions t = t.completions
let flows t = Flow_table.flows t.acct

let busy_intervals t flow ~until =
  let a = Flow_table.find t.acct flow in
  let closed = Vec.to_list a.intervals in
  if a.backlog > 0 && a.opened_at <= until then closed @ [ (a.opened_at, until) ]
  else closed

let service t flow ~t1 ~t2 =
  Vec.fold t.completions ~init:0.0 ~f:(fun acc c ->
      if c.flow = flow && c.start >= t1 && c.finish <= t2 then acc +. float_of_int c.len
      else acc)
