(** Per-flow service accounting at one server.

    Records every service completion (with its service-start time,
    which the paper's definition of "served in [t1,t2]" needs: a packet
    counts only if it both starts and finishes inside the interval) and
    the per-flow backlogged intervals (a flow is backlogged from the
    arrival that makes its queue non-empty until the departure that
    empties it — the packet in service counts as backlog). This is the
    measurement substrate for the empirical fairness index
    {!Fairness}. *)

open Sfq_base
open Sfq_netsim

type completion = { flow : Packet.flow; start : float; finish : float; len : int }

type t

val attach : Server.t -> t

val create : unit -> t
(** An empty log to be filled by hand with {!note_arrival} /
    {!note_completion} — for harnesses (e.g. the oracle monitors) that
    drive a scheduler directly rather than through a {!Server.t}. *)

val note_arrival : t -> at:float -> Packet.flow -> unit
(** Record that a packet of the flow arrived at time [at] (opens a busy
    interval if the flow was idle). *)

val note_completion :
  t -> flow:Packet.flow -> start:float -> finish:float -> len:int -> unit
(** Record a service completion; closes the flow's busy interval if
    this departure empties its queue. Call in finish order. *)

val note_removal : t -> at:float -> Packet.flow -> unit
(** A packet of the flow left {e without} service (buffer drop or flow
    closure) at time [at]: the backlog shrinks — closing the busy
    interval if it empties — but no completion is logged, so service
    measures ({!service}, {!Fairness}) count only real transmissions. *)

val completions : t -> completion Sfq_util.Vec.t
(** In finish order. *)

val flows : t -> Packet.flow list

val busy_intervals : t -> Packet.flow -> until:float -> (float * float) list
(** Maximal intervals during which the flow was continuously
    backlogged, in time order; an interval still open at measurement
    time is closed at [until]. *)

val service : t -> Packet.flow -> t1:float -> t2:float -> float
(** [W_f(t1,t2)] in bits: total length of the flow's packets that start
    and finish service within [\[t1, t2\]]. *)
