(* Domain-parallel sweep CLI: regenerate every experiment behind
   EXPERIMENTS.md (the Registry, E1-E24) plus the oracle acceptance
   sweep, fanned out over a fixed-size domain pool, and print a
   per-experiment digest table.

     sfq_sweep list
     sfq_sweep run --domains 4 --seed 7
     sfq_sweep run --quick fig-1b table-1
     sfq_sweep golden > test/golden/digests.expected
     sfq_sweep churn --cycles 10000   # bounded-memory lifecycle stress

   Digests are content hashes of each experiment's full result record,
   so the table is a behavioral fingerprint of the whole reproduction:
   two builds agree on the digest column iff they agree on every number
   in every table and figure. The digest column is byte-identical at
   every --domains value (the determinism contract of sfq.par; the
   wall-clock column is the only thing parallelism may change). With
   --seed S, experiment #i runs under Seed.derive ~root:S ~index:i —
   derived from the experiment's index, never from execution order. *)

open Sfq_util
open Sfq_oracle
open Sfq_par

type row = { rid : string; title : string; digest : string; wall_s : float }

let wall_time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let run_cmd domains seed quick with_oracle ids =
  let domains = if domains = 0 then Pool.default_domains () else domains in
  if domains < 1 then begin
    prerr_endline "sfq-sweep: --domains must be >= 0";
    exit 2
  end;
  let entries =
    match ids with
    | [] -> Sfq_experiments.Registry.all
    | ids ->
      List.map
        (fun id ->
          match Sfq_experiments.Registry.find id with
          | Some e -> e
          | None ->
            Printf.eprintf "sfq-sweep: unknown experiment %S (try: sfq-sweep list)\n" id;
            exit 2)
        ids
  in
  (* Entry indices in Registry.all (not in the filtered list) seed the
     derivation, so "--seed 7 fig-1b" and a full "--seed 7" run agree
     on fig-1b's digest. *)
  let index_of e =
    let rec go i = function
      | [] -> assert false
      | (x : Sfq_experiments.Registry.entry) :: tl -> if x.id = e then i else go (i + 1) tl
    in
    go 0 Sfq_experiments.Registry.all
  in
  let tasks = Array.of_list entries in
  let total_t0 = Unix.gettimeofday () in
  let rows =
    Pool.run ~domains
      ~f:(fun _ (e : Sfq_experiments.Registry.entry) ->
        (* audit (parallel safety): Registry entries build all mutable
           state inside run; the derived seed is a pure function of the
           entry's index *)
        let seed = Option.map (fun s -> Seed.derive ~root:s ~index:(index_of e.id)) seed in
        let digest, wall_s =
          wall_time (fun () -> Sfq_experiments.Registry.digest e ?seed ~quick ())
        in
        { rid = e.id; title = e.title; digest; wall_s })
      tasks
  in
  let rows = Array.to_list rows in
  (* The oracle acceptance sweep rides along as a final row: its digest
     covers every monitor verdict of every (discipline, workload) cell.
     Run after the experiment fan-out (nested submission is rejected by
     the pool), through its own pool at the same domain count. *)
  let rows =
    if not with_oracle then rows
    else begin
      let cells = Suite.all_cells () in
      let digest, wall_s =
        wall_time (fun () ->
            Digest.to_hex (Digest.string (Run.sweep_digest cells (Run.sweep ~domains cells))))
      in
      rows
      @ [
          {
            rid = "oracle-sweep";
            title = Printf.sprintf "acceptance sweep (%d cells)" (List.length cells);
            digest;
            wall_s;
          };
        ]
    end
  in
  let total_s = Unix.gettimeofday () -. total_t0 in
  let table = Text_table.create [ "experiment"; "title"; "digest"; "wall s" ] in
  List.iter
    (fun r ->
      Text_table.add_row table [ r.rid; r.title; r.digest; Printf.sprintf "%.3f" r.wall_s ])
    rows;
  Text_table.print table;
  Printf.printf
    "\n%d experiment(s), %d domain(s), %s, seed %s: %.3f s wall.\n\
     (The digest column is invariant under --domains; wall times are not.)\n"
    (List.length rows) domains
    (if quick then "quick" else "full")
    (match seed with None -> "default" | Some s -> string_of_int s)
    total_s;
  0

let list_cmd () =
  List.iter
    (fun (e : Sfq_experiments.Registry.entry) -> Printf.printf "%-16s %s\n" e.id e.title)
    Sfq_experiments.Registry.all;
  Printf.printf "%-16s %s\n" "oracle-sweep" "acceptance sweep over all oracle cells (--oracle)";
  0

let golden_cmd () =
  print_string (Sfq_experiments.Registry.golden_corpus ());
  0

(* ------------------------------------------------------------------ *)
(* churn: the bounded-memory stress check CI runs. Each domain churns
   [cycles] open/close lifecycles through a Flow_registry + a live SFQ
   instance (2 packets in, 1 served, close flushes the rest, id
   recycled), then we assert the structural invariants — every id
   recycled, dense state bounded by the live window, packet
   conservation — and that process RSS grew by less than a fixed
   bound across the whole run. *)

type churn_stats = {
  served : int;
  flushed : int;
  opened : int;
  peak_live : int;
  high_water : int;
}

let rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    let rec go () =
      match input_line ic with
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then
          Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" Option.some
        else go ()
      | exception End_of_file -> None
    in
    let r = go () in
    close_in ic;
    r

let churn_task ~cycles ~window =
  let open Sfq_base in
  let reg = Flow_registry.create () in
  let s = Sfq_core.Sfq.create (Weights.of_list ~default:1.0 []) in
  let sched = Sfq_core.Sfq.sched s in
  let live = Queue.create () in
  let now = ref 0.0 in
  let served = ref 0 in
  let flushed = ref 0 in
  let close f =
    flushed := !flushed + List.length (sched.Sched.close_flow ~now:!now f);
    Flow_registry.close_flow reg f
  in
  for _ = 1 to cycles do
    let f = Flow_registry.open_flow reg in
    Queue.push f live;
    sched.Sched.enqueue ~now:!now (Packet.make ~flow:f ~seq:1 ~len:1000 ~born:!now ());
    sched.Sched.enqueue ~now:!now (Packet.make ~flow:f ~seq:2 ~len:1000 ~born:!now ());
    (match sched.Sched.dequeue ~now:!now with Some _ -> incr served | None -> ());
    if Queue.length live > window then close (Queue.pop live);
    now := !now +. 1e-3
  done;
  Queue.iter close live;
  if Flow_registry.live reg <> 0 then failwith "churn: registry still has open flows";
  if sched.Sched.size () <> 0 then failwith "churn: scheduler backlog after full drain";
  {
    served = !served;
    flushed = !flushed;
    opened = Flow_registry.opened reg;
    peak_live = Flow_registry.peak_live reg;
    high_water = Flow_registry.high_water reg;
  }

let churn_cmd domains cycles window rss_limit_kb =
  let domains =
    if domains > 0 then domains
    else
      match Sys.getenv_opt "SFQ_DOMAINS" with
      | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
      | None -> 1
  in
  if cycles < 1 || window < 1 then begin
    prerr_endline "sfq-sweep: --cycles and --window must be >= 1";
    exit 2
  end;
  (* Warm up allocators and code paths before the baseline RSS reading,
     so the growth measured below is attributable to the churn itself. *)
  ignore (churn_task ~cycles:(min cycles 1000) ~window);
  Gc.compact ();
  let rss0 = rss_kb () in
  let t0 = Unix.gettimeofday () in
  let stats =
    Pool.run ~domains
      ~f:(fun _ () -> churn_task ~cycles ~window)
      (Array.make domains ())
  in
  let wall = Unix.gettimeofday () -. t0 in
  Gc.compact ();
  let rss1 = rss_kb () in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  Array.iteri
    (fun i (st : churn_stats) ->
      Printf.printf
        "domain %d: opened=%d served=%d flushed=%d peak_live=%d high_water=%d\n" i
        st.opened st.served st.flushed st.peak_live st.high_water;
      if st.opened <> cycles then fail "domain %d: opened %d <> cycles %d" i st.opened cycles;
      if st.served + st.flushed <> 2 * cycles then
        fail "domain %d: conservation broken: served %d + flushed %d <> enqueued %d" i
          st.served st.flushed (2 * cycles);
      if st.high_water <> st.peak_live then
        fail "domain %d: id leak: high_water %d <> peak_live %d (close did not recycle)" i
          st.high_water st.peak_live;
      if st.peak_live > window + 1 then
        fail "domain %d: live window exceeded: peak_live %d > %d" i st.peak_live (window + 1);
      if st <> stats.(0) then fail "domain %d: stats differ from domain 0" i)
    stats;
  (match (rss0, rss1) with
  | Some kb0, Some kb1 ->
    let growth = kb1 - kb0 in
    Printf.printf "rss: %d kB -> %d kB (growth %d kB, bound %d kB)\n" kb0 kb1 growth
      rss_limit_kb;
    if growth > rss_limit_kb then
      fail "rss grew by %d kB over the %d kB bound: churn is not bounded-memory" growth
        rss_limit_kb
  | _ -> print_endline "rss: /proc/self/status unavailable, growth check skipped");
  Printf.printf "%d cycle(s) x %d domain(s), window %d: %.3f s wall.\n" cycles domains
    window wall;
  match !failures with
  | [] ->
    print_endline "churn: OK";
    0
  | fs ->
    List.iter (fun m -> Printf.eprintf "churn: FAIL: %s\n" m) (List.rev fs);
    1

(* ------------------------------------------------------------------ *)
(* fastpath: digest equivalence of the fixed-point schedulers against
   their float originals over the frozen theorem pool, plus a verdict
   check on the approximate sp-pifo cells. The outcome digests cover
   departures, finish time, drops and monitor violations, so equality
   here means the fast path drained the same traffic to the same
   instant with every theorem monitor equally silent. *)

let env_domains domains =
  if domains > 0 then domains
  else
    match Sys.getenv_opt "SFQ_DOMAINS" with
    | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
    | None -> 1

let fastpath_cmd domains =
  let domains = env_domains domains in
  let fast = Suite.fastpath_cells () in
  let prefixed p =
    List.filter
      (fun (c : Run.cell) ->
        String.length c.Run.label >= String.length p
        && String.sub c.Run.label 0 (String.length p) = p)
      fast
  in
  (* float VC under the structural set over the same pool as vc-fast
     (Suite's structural_cells use the override pool, so build the
     comparable cells here) *)
  let vc_cells =
    List.mapi
      (fun i w ->
        {
          Run.label = Printf.sprintf "vc#%d" i;
          workload = w;
          driver =
            (fun () ->
              {
                Run.sched =
                  Sfq_sched.Virtual_clock.sched
                    (Sfq_sched.Virtual_clock.create
                       (Sfq_base.Weights.of_list ~default:1.0 w.Workload.weights));
                monitors = Suite.structural ();
                on_reweight = None;
              });
        })
      Suite.theorem_pool
  in
  let failures = ref 0 in
  let table = Text_table.create [ "pair"; "cells"; "identical"; "wall s" ] in
  let check name base_cells fast_cells =
    let (base, fast_out), wall_s =
      wall_time (fun () ->
          (Run.sweep ~domains base_cells, Run.sweep ~domains fast_cells))
    in
    let n = Array.length base in
    let ok = ref 0 in
    for i = 0 to n - 1 do
      let db = Run.outcome_digest base.(i) and df = Run.outcome_digest fast_out.(i) in
      if db = df then incr ok
      else begin
        incr failures;
        Printf.eprintf "fastpath: MISMATCH %s cell %d:\n  float: %s\n  fast:  %s\n" name
          i db df
      end
    done;
    Text_table.add_row table
      [ name; string_of_int n; Printf.sprintf "%d/%d" !ok n; Printf.sprintf "%.3f" wall_s ]
  in
  check "sfq = sfq-fast" (Suite.sfq_cells ()) (prefixed "sfq-fast#");
  check "scfq = scfq-fast" (Suite.scfq_cells ()) (prefixed "scfq-fast#");
  check "vc = vc-fast" vc_cells (prefixed "vc-fast#");
  (* sp-pifo approximates rank order, so there is no float twin to
     match — but its structural/conservation monitors must stay silent
     (the relaxed fairness oracle never fails by construction). *)
  let sp = prefixed "sp-pifo#" in
  let sp_out, sp_wall = wall_time (fun () -> Run.sweep ~domains sp) in
  let sp_ok = ref 0 in
  Array.iteri
    (fun i (o : Run.outcome) ->
      if o.Run.violations = [] then incr sp_ok
      else begin
        incr failures;
        List.iter
          (fun v ->
            Format.eprintf "fastpath: sp-pifo cell %d: %a@." i Monitor.pp_violation v)
          o.Run.violations
      end)
    sp_out;
  Text_table.add_row table
    [
      "sp-pifo clean";
      string_of_int (Array.length sp_out);
      Printf.sprintf "%d/%d" !sp_ok (Array.length sp_out);
      Printf.sprintf "%.3f" sp_wall;
    ];
  Text_table.print table;
  if !failures = 0 then begin
    Printf.printf "fastpath: OK (%d domain(s))\n" domains;
    0
  end
  else begin
    Printf.eprintf "fastpath: %d failure(s)\n" !failures;
    1
  end

(* ------------------------------------------------------------------ *)
(* pifo: the same digest-equivalence contract for the programmable
   runtime — every Programs rank program against its hand-written
   original, over the pifo_cells slice of the theorem pool. *)

let pifo_cmd domains =
  let domains = env_domains domains in
  let pool = List.filteri (fun i _ -> i < 90) Suite.theorem_pool in
  let pifo = Suite.pifo_cells () in
  let prefixed p =
    List.filter
      (fun (c : Run.cell) ->
        String.length c.Run.label >= String.length p
        && String.sub c.Run.label 0 (String.length p) = p)
      pifo
  in
  let weights_of (w : Workload.t) =
    Sfq_base.Weights.of_list ~default:1.0 w.Workload.weights
  in
  (* float counterparts of the structurally-monitored ports, over the
     same pool slice (Suite's structural_cells use the override pool) *)
  let structural_cells what mk =
    List.mapi
      (fun i w ->
        {
          Run.label = Printf.sprintf "%s#%d" what i;
          workload = w;
          driver =
            (fun () ->
              { Run.sched = mk w; monitors = Suite.structural (); on_reweight = None });
        })
      pool
  in
  let specs (w : Workload.t) =
    List.map
      (fun (f, r) ->
        (f, { Sfq_sched.Delay_edd.rate = r; deadline = 1.0; max_len = 1000 }))
      w.Workload.weights
  in
  let failures = ref 0 in
  let table = Text_table.create [ "pair"; "cells"; "identical"; "wall s" ] in
  let check name base_cells pifo_cells =
    let (base, pifo_out), wall_s =
      wall_time (fun () ->
          (Run.sweep ~domains base_cells, Run.sweep ~domains pifo_cells))
    in
    let n = Array.length base in
    let ok = ref 0 in
    for i = 0 to n - 1 do
      let db = Run.outcome_digest base.(i) and dp = Run.outcome_digest pifo_out.(i) in
      if db = dp then incr ok
      else begin
        incr failures;
        Printf.eprintf "pifo: MISMATCH %s cell %d:\n  float: %s\n  pifo:  %s\n" name i
          db dp
      end
    done;
    Text_table.add_row table
      [ name; string_of_int n; Printf.sprintf "%d/%d" !ok n; Printf.sprintf "%.3f" wall_s ]
  in
  check "sfq = pifo-sfq" (Suite.sfq_cells ~pool ()) (prefixed "pifo-sfq#");
  check "scfq = pifo-scfq" (Suite.scfq_cells ~pool ()) (prefixed "pifo-scfq#");
  check "vc = pifo-vc"
    (structural_cells "vc" (fun w ->
         Sfq_sched.Virtual_clock.sched (Sfq_sched.Virtual_clock.create (weights_of w))))
    (prefixed "pifo-vc#");
  check "edd = pifo-edd"
    (structural_cells "edd" (fun w ->
         Sfq_sched.Delay_edd.sched (Sfq_sched.Delay_edd.create (specs w))))
    (prefixed "pifo-edd#");
  check "fqs = pifo-fqs"
    (structural_cells "fqs" (fun w ->
         Sfq_sched.Fqs.sched
           (Sfq_sched.Fqs.create ~capacity:w.Workload.capacity (weights_of w))))
    (prefixed "pifo-fqs#");
  check "wf2q = pifo-wf2q"
    (structural_cells "wf2q" (fun w ->
         Sfq_sched.Wf2q.sched
           (Sfq_sched.Wf2q.create ~capacity:w.Workload.capacity (weights_of w))))
    (prefixed "pifo-wf2q#");
  Text_table.print table;
  if !failures = 0 then begin
    Printf.printf "pifo: OK (%d domain(s))\n" domains;
    0
  end
  else begin
    Printf.eprintf "pifo: %d failure(s)\n" !failures;
    1
  end

(* ------------------------------------------------------------------ *)
(* net: the network-scale sweep (E27). Two checks in one command: the
   topology x discipline grid must be digest-identical serial vs
   sharded (the Net_sweep determinism contract), and the optional
   --scale star must drain 10^5..10^6 churned flows with the composed
   Thm 8/9 oracle silent and process RSS growth under a bound. *)

let net_cmd domains seed scale rss_limit_kb =
  let domains = env_domains domains in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let cells = Sfq_experiments.Net_sweep.default_cells ?root:seed () in
  let serial, wall_serial =
    wall_time (fun () -> Sfq_experiments.Net_sweep.sweep cells)
  in
  let serial_digest = Sfq_experiments.Net_sweep.sweep_digest cells serial in
  let table = Text_table.create [ "cell"; "delivered"; "dropped"; "digest"; "viol" ] in
  List.iteri
    (fun i (c : Sfq_experiments.Net_sweep.scenario) ->
      let o = serial.(i) in
      let nv = List.length o.Sfq_experiments.Net_sweep.violations in
      if nv > 0 then begin
        fail "cell %s: %d monitor violation(s)" c.Sfq_experiments.Net_sweep.label nv;
        List.iter
          (fun v -> Format.eprintf "net: %s: %a@." c.Sfq_experiments.Net_sweep.label
              Monitor.pp_violation v)
          o.Sfq_experiments.Net_sweep.violations
      end;
      Text_table.add_row table
        [
          c.Sfq_experiments.Net_sweep.label;
          string_of_int o.Sfq_experiments.Net_sweep.delivered;
          string_of_int o.Sfq_experiments.Net_sweep.dropped;
          Digest.to_hex
            (Digest.string (Sfq_experiments.Net_sweep.outcome_digest o));
          string_of_int nv;
        ])
    cells;
  Text_table.print table;
  let sharded, wall_sharded =
    wall_time (fun () -> Sfq_experiments.Net_sweep.sweep ~domains cells)
  in
  let sharded_digest = Sfq_experiments.Net_sweep.sweep_digest cells sharded in
  let identical = sharded_digest = serial_digest in
  if not identical then
    fail "sharded sweep digest differs from serial at %d domain(s)" domains;
  Printf.printf
    "grid: %d cells, serial %.3f s, %d domain(s) %.3f s, digests %s.\n"
    (List.length cells) wall_serial domains wall_sharded
    (if identical then "identical" else "DIFFER");
  if scale > 0 then begin
    Gc.compact ();
    let rss0 = rss_kb () in
    let s = Sfq_experiments.Net_sweep.scale_star ~flows:scale () in
    let o, wall = wall_time (fun () -> Sfq_experiments.Net_sweep.run_scenario s) in
    Gc.compact ();
    let rss1 = rss_kb () in
    let open Sfq_experiments.Net_sweep in
    Printf.printf
      "scale: %s: %d delivered in %.1f s (%.0f pkt/s), ids %d (window-bounded), \
       e2e checked=%d lost=%d min_slack=%g, hash=%016Lx\n"
      s.label o.delivered wall
      (float_of_int o.delivered /. Float.max wall 1e-9)
      o.high_water o.e2e_checked o.e2e_lost o.min_slack o.order_hash;
    if o.violations <> [] then begin
      fail "scale cell %s: %d monitor violation(s)" s.label (List.length o.violations);
      List.iter
        (fun v -> Format.eprintf "net: scale: %a@." Monitor.pp_violation v)
        o.violations
    end;
    if o.in_flight <> 0 then
      fail "scale cell %s: %d packet(s) left in flight after drain" s.label o.in_flight;
    match (rss0, rss1) with
    | Some kb0, Some kb1 ->
      let growth = kb1 - kb0 in
      Printf.printf "scale: rss %d kB -> %d kB (growth %d kB, bound %d kB)\n" kb0 kb1
        growth rss_limit_kb;
      if growth > rss_limit_kb then
        fail "scale rss grew by %d kB over the %d kB bound" growth rss_limit_kb
    | _ -> print_endline "scale: rss unavailable, growth check skipped"
  end;
  match !failures with
  | [] ->
    print_endline "net: OK";
    0
  | fs ->
    List.iter (fun m -> Printf.eprintf "net: FAIL: %s\n" m) (List.rev fs);
    1

(* ------------------------------------------------------------------ *)
(* replay: the E28 schedule-replay universality check. Single-hop
   (discipline x workload) cells fan over the domain pool — each cell
   records a schedule and replays it under LSTF — then the network
   grid, the SFQ negative control and the seeded-mutant kills run via
   the E28 module, and everything lands in one digest table. *)

let replay_cmd domains limit =
  let domains = env_domains domains in
  let module Lr = Sfq_experiments.Lstf_replay in
  let module Replay = Sfq_oracle.Replay in
  let failures = ref 0 in
  let table = Text_table.create [ "cell"; "verdict"; "ok" ] in
  let add (r : Lr.row) =
    if not r.Lr.ok then incr failures;
    Text_table.add_row table [ r.Lr.cell; r.Lr.verdict; (if r.Lr.ok then "yes" else "NO") ]
  in
  let single_cells = Array.of_list (Replay.suite_cells ~limit ()) in
  let single, wall_single =
    wall_time (fun () ->
        Pool.run ~domains
          ~f:(fun _ (c : Replay.cell) ->
            (* audit (parallel safety): a replay cell builds its
               schedulers, service log and schedule inside run *)
            let v = c.Replay.run () in
            {
              Lr.cell = c.Replay.label;
              verdict = Replay.verdict_digest v;
              ok = (match v with Replay.Replayed _ -> true | Replay.Diverged _ -> false);
            })
          single_cells)
  in
  Array.iter add single;
  (* the network half is serial: each cell is already a whole-network
     simulation, and the record→replay pair shares a schedule *)
  let e28, wall_net = wall_time (fun () -> Lr.run ~limit:0 ()) in
  List.iter add e28.Lr.net;
  List.iter add e28.Lr.control;
  List.iter add e28.Lr.kills;
  (if not (List.exists (fun (r : Lr.row) -> r.Lr.ok) e28.Lr.control) then begin
     incr failures;
     prerr_endline
       "replay: negative control vacuous: SFQ replayed every DRR recording"
   end);
  Text_table.print table;
  Printf.printf
    "replay: %d single-hop cell(s) over %d domain(s) in %.3f s; %d network \
     row(s) in %.3f s.\n"
    (Array.length single_cells) domains wall_single
    (List.length e28.Lr.net + List.length e28.Lr.control + List.length e28.Lr.kills)
    wall_net;
  if !failures = 0 then begin
    print_endline "replay: OK";
    0
  end
  else begin
    Printf.eprintf "replay: %d failure(s)\n" !failures;
    1
  end

open Cmdliner

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:"Domain count for the sweep pool (0 = hardware default). The digest \
              column is identical at every value.")

let seed_arg =
  Arg.(
    value & opt (some int) None
    & info [ "seed" ] ~docv:"S"
        ~doc:"Root seed; experiment #i runs under a seed derived from (S, i). \
              Omit for each experiment's paper-default seed.")

let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced workload sizes.")

let oracle_arg =
  Arg.(
    value & flag
    & info [ "oracle" ] ~doc:"Also run the oracle acceptance sweep as a final row.")

let ids_arg = Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT")

let run_t =
  Term.(
    const (fun d s q o ids -> Stdlib.exit (run_cmd d s q o ids))
    $ domains_arg $ seed_arg $ quick_arg $ oracle_arg $ ids_arg)

let run_cmd_t =
  Cmd.v
    (Cmd.info "run" ~doc:"Regenerate experiment data and print the digest table")
    run_t

let list_t = Term.(const (fun () -> Stdlib.exit (list_cmd ())) $ const ())
let list_cmd_t = Cmd.v (Cmd.info "list" ~doc:"List experiment ids") list_t

let golden_t = Term.(const (fun () -> Stdlib.exit (golden_cmd ())) $ const ())

let golden_cmd_t =
  Cmd.v
    (Cmd.info "golden" ~doc:"Print the golden compact-digest corpus (test/golden)")
    golden_t

let churn_domains_arg =
  Arg.(
    value & opt int 0
    & info [ "domains" ] ~docv:"N"
        ~doc:"Concurrent churn domains (0 = \\$SFQ_DOMAINS, or 1 if unset).")

let cycles_arg =
  Arg.(
    value & opt int 10_000
    & info [ "cycles" ] ~docv:"N" ~doc:"Open/close lifecycles per domain.")

let window_arg =
  Arg.(
    value & opt int 8
    & info [ "window" ] ~docv:"N" ~doc:"Concurrently-open flows during the churn.")

let rss_limit_arg =
  Arg.(
    value & opt int 16_384
    & info [ "rss-limit-kb" ] ~docv:"KB"
        ~doc:"Fail if process RSS grows by more than this many kB across the run.")

let churn_t =
  Term.(
    const (fun d c w r -> Stdlib.exit (churn_cmd d c w r))
    $ churn_domains_arg $ cycles_arg $ window_arg $ rss_limit_arg)

let churn_cmd_t =
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "Bounded-memory churn stress: cycle flow ids through a registry and a live \
          SFQ, asserting id recycling, packet conservation and an RSS growth bound")
    churn_t

let fastpath_domains_arg =
  Arg.(
    value & opt int 0
    & info [ "domains" ] ~docv:"N"
        ~doc:"Sweep domains (0 = \\$SFQ_DOMAINS, or 1 if unset).")

let fastpath_t =
  Term.(const (fun d -> Stdlib.exit (fastpath_cmd d)) $ fastpath_domains_arg)

let fastpath_cmd_t =
  Cmd.v
    (Cmd.info "fastpath"
       ~doc:
         "Check the fixed-point fast path: cell-by-cell outcome-digest equality of \
          sfq-fast/scfq-fast/vc-fast against their float originals over the frozen \
          theorem pool, and a clean-verdict check on the approximate sp-pifo cells")
    fastpath_t

let net_seed_arg =
  Arg.(
    value & opt (some int) None
    & info [ "seed" ] ~docv:"S"
        ~doc:"Root seed for the grid cells (cell #i derives from (S, i)). Omit for \
              the default grid.")

let scale_arg =
  Arg.(
    value & opt int 0
    & info [ "scale" ] ~docv:"FLOWS"
        ~doc:"Also run the churned scaling star with this many total flows (0 = \
              skip). The composed end-to-end oracle must stay silent.")

let net_rss_limit_arg =
  Arg.(
    value & opt int 1_048_576
    & info [ "rss-limit-kb" ] ~docv:"KB"
        ~doc:"Fail the --scale run if process RSS grows by more than this many kB.")

let net_t =
  Term.(
    const (fun d s sc r -> Stdlib.exit (net_cmd d s sc r))
    $ fastpath_domains_arg $ net_seed_arg $ scale_arg $ net_rss_limit_arg)

let net_cmd_t =
  Cmd.v
    (Cmd.info "net"
       ~doc:
         "Network-scale topology sweep (E27): run the star/line/tree/dumbbell x \
          discipline grid serially and sharded over the domain pool, check the \
          delivery digests are identical, and optionally scale a churned star to \
          --scale flows under an RSS growth bound with the composed Thm 8/9 \
          delay oracle attached")
    net_t

let replay_limit_arg =
  Arg.(
    value & opt int 12
    & info [ "limit" ] ~docv:"N"
        ~doc:"Truncate the theorem pool to N workloads for the single-hop cells \
              (every shipped discipline is recorded and replayed on each).")

let replay_t =
  Term.(
    const (fun d l -> Stdlib.exit (replay_cmd d l))
    $ fastpath_domains_arg $ replay_limit_arg)

let replay_cmd_t =
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Schedule-replay universality (E28): record each discipline's departure \
          schedule on frozen single-hop workloads and the E27 network grid, replay \
          the arrivals under LSTF (rank = recorded output time minus remaining \
          path service time) and check packet-for-packet fidelity; SFQ as the \
          diverging negative control, plus the seeded lstf-wrong-slack and \
          lstf-priority-tie mutant kills")
    replay_t

let pifo_t = Term.(const (fun d -> Stdlib.exit (pifo_cmd d)) $ fastpath_domains_arg)

let pifo_cmd_t =
  Cmd.v
    (Cmd.info "pifo"
       ~doc:
         "Check the programmable PIFO runtime: cell-by-cell outcome-digest equality \
          of every rank-program port (pifo-sfq/scfq/vc/edd/fqs/wf2q) against its \
          hand-written original over the frozen theorem pool")
    pifo_t

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info = Cmd.info "sfq-sweep" ~doc:"Domain-parallel experiment sweep CLI" in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            run_cmd_t;
            list_cmd_t;
            golden_cmd_t;
            churn_cmd_t;
            fastpath_cmd_t;
            pifo_cmd_t;
            net_cmd_t;
            replay_cmd_t;
          ]))
