(* Domain-parallel sweep CLI: regenerate every experiment behind
   EXPERIMENTS.md (the Registry, E1-E20) plus the oracle acceptance
   sweep, fanned out over a fixed-size domain pool, and print a
   per-experiment digest table.

     sfq_sweep list
     sfq_sweep run --domains 4 --seed 7
     sfq_sweep run --quick fig-1b table-1
     sfq_sweep golden > test/golden/digests.expected

   Digests are content hashes of each experiment's full result record,
   so the table is a behavioral fingerprint of the whole reproduction:
   two builds agree on the digest column iff they agree on every number
   in every table and figure. The digest column is byte-identical at
   every --domains value (the determinism contract of sfq.par; the
   wall-clock column is the only thing parallelism may change). With
   --seed S, experiment #i runs under Seed.derive ~root:S ~index:i —
   derived from the experiment's index, never from execution order. *)

open Sfq_util
open Sfq_oracle
open Sfq_par

type row = { rid : string; title : string; digest : string; wall_s : float }

let wall_time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let run_cmd domains seed quick with_oracle ids =
  let domains = if domains = 0 then Pool.default_domains () else domains in
  if domains < 1 then begin
    prerr_endline "sfq-sweep: --domains must be >= 0";
    exit 2
  end;
  let entries =
    match ids with
    | [] -> Sfq_experiments.Registry.all
    | ids ->
      List.map
        (fun id ->
          match Sfq_experiments.Registry.find id with
          | Some e -> e
          | None ->
            Printf.eprintf "sfq-sweep: unknown experiment %S (try: sfq-sweep list)\n" id;
            exit 2)
        ids
  in
  (* Entry indices in Registry.all (not in the filtered list) seed the
     derivation, so "--seed 7 fig-1b" and a full "--seed 7" run agree
     on fig-1b's digest. *)
  let index_of e =
    let rec go i = function
      | [] -> assert false
      | (x : Sfq_experiments.Registry.entry) :: tl -> if x.id = e then i else go (i + 1) tl
    in
    go 0 Sfq_experiments.Registry.all
  in
  let tasks = Array.of_list entries in
  let total_t0 = Unix.gettimeofday () in
  let rows =
    Pool.run ~domains
      ~f:(fun _ (e : Sfq_experiments.Registry.entry) ->
        (* audit (parallel safety): Registry entries build all mutable
           state inside run; the derived seed is a pure function of the
           entry's index *)
        let seed = Option.map (fun s -> Seed.derive ~root:s ~index:(index_of e.id)) seed in
        let digest, wall_s =
          wall_time (fun () -> Sfq_experiments.Registry.digest e ?seed ~quick ())
        in
        { rid = e.id; title = e.title; digest; wall_s })
      tasks
  in
  let rows = Array.to_list rows in
  (* The oracle acceptance sweep rides along as a final row: its digest
     covers every monitor verdict of every (discipline, workload) cell.
     Run after the experiment fan-out (nested submission is rejected by
     the pool), through its own pool at the same domain count. *)
  let rows =
    if not with_oracle then rows
    else begin
      let cells = Suite.all_cells () in
      let digest, wall_s =
        wall_time (fun () ->
            Digest.to_hex (Digest.string (Run.sweep_digest cells (Run.sweep ~domains cells))))
      in
      rows
      @ [
          {
            rid = "oracle-sweep";
            title = Printf.sprintf "acceptance sweep (%d cells)" (List.length cells);
            digest;
            wall_s;
          };
        ]
    end
  in
  let total_s = Unix.gettimeofday () -. total_t0 in
  let table = Text_table.create [ "experiment"; "title"; "digest"; "wall s" ] in
  List.iter
    (fun r ->
      Text_table.add_row table [ r.rid; r.title; r.digest; Printf.sprintf "%.3f" r.wall_s ])
    rows;
  Text_table.print table;
  Printf.printf
    "\n%d experiment(s), %d domain(s), %s, seed %s: %.3f s wall.\n\
     (The digest column is invariant under --domains; wall times are not.)\n"
    (List.length rows) domains
    (if quick then "quick" else "full")
    (match seed with None -> "default" | Some s -> string_of_int s)
    total_s;
  0

let list_cmd () =
  List.iter
    (fun (e : Sfq_experiments.Registry.entry) -> Printf.printf "%-16s %s\n" e.id e.title)
    Sfq_experiments.Registry.all;
  Printf.printf "%-16s %s\n" "oracle-sweep" "acceptance sweep over all oracle cells (--oracle)";
  0

let golden_cmd () =
  print_string (Sfq_experiments.Registry.golden_corpus ());
  0

open Cmdliner

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:"Domain count for the sweep pool (0 = hardware default). The digest \
              column is identical at every value.")

let seed_arg =
  Arg.(
    value & opt (some int) None
    & info [ "seed" ] ~docv:"S"
        ~doc:"Root seed; experiment #i runs under a seed derived from (S, i). \
              Omit for each experiment's paper-default seed.")

let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced workload sizes.")

let oracle_arg =
  Arg.(
    value & flag
    & info [ "oracle" ] ~doc:"Also run the oracle acceptance sweep as a final row.")

let ids_arg = Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT")

let run_t =
  Term.(
    const (fun d s q o ids -> Stdlib.exit (run_cmd d s q o ids))
    $ domains_arg $ seed_arg $ quick_arg $ oracle_arg $ ids_arg)

let run_cmd_t =
  Cmd.v
    (Cmd.info "run" ~doc:"Regenerate experiment data and print the digest table")
    run_t

let list_t = Term.(const (fun () -> Stdlib.exit (list_cmd ())) $ const ())
let list_cmd_t = Cmd.v (Cmd.info "list" ~doc:"List experiment ids") list_t

let golden_t = Term.(const (fun () -> Stdlib.exit (golden_cmd ())) $ const ())

let golden_cmd_t =
  Cmd.v
    (Cmd.info "golden" ~doc:"Print the golden compact-digest corpus (test/golden)")
    golden_t

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info = Cmd.info "sfq-sweep" ~doc:"Domain-parallel experiment sweep CLI" in
  exit (Cmd.eval (Cmd.group ~default info [ run_cmd_t; list_cmd_t; golden_cmd_t ]))
