(* Trace CLI: run a named workload through a named discipline with the
   sfq.obs tracer attached, then print per-flow summaries (delay
   p50/p99, tag lag vs v(t), max backlog) or export the event trace —
   JSONL for scripts, Chrome trace_event for Perfetto
   (https://ui.perfetto.dev).

     sfq_trace list
     sfq_trace run --disc sfq --workload bursty
     sfq_trace run --disc sfq --workload cbr --chrome trace.json

   The driver is the oracle layer's fixed-rate server (Run.fixed_rate):
   one packet in service at a time at the workload's link capacity,
   idle polls included — the same deterministic semantics the theorem
   oracles are checked under. For SFQ (and SCFQ) the scheduler's tag
   hook feeds the tracer the real eq. 4-5 start/finish tags and v(t);
   other disciplines trace arrivals/dequeues/idle-busy only. *)

open Sfq_util
open Sfq_base
open Sfq_core
open Sfq_obs
open Sfq_oracle

(* ------------------------------------------------------------------ *)
(* Named workloads                                                      *)

let capacity = 1_000_000.0 (* bits/s *)

let cbr ~flows ~pkts ~seed:_ =
  (* equal weights, 90% aggregate load, round-robin arrivals *)
  let len = 1000 in
  let gap = float_of_int len /. (0.9 *. capacity) in
  let arrivals =
    List.init (flows * pkts) (fun k ->
        { Workload.at = float_of_int k *. gap; flow = k mod flows; len; rate = None })
  in
  {
    Workload.capacity;
    weights = List.init flows (fun f -> (f, 0.9 *. capacity /. float_of_int flows));
    arrivals;
    reweights = [];
    churn = [];
    rate_changes = [];
    buffer = None;
  }

let bursty ~flows ~pkts ~seed =
  (* per-flow bursts of up to 8 back-to-back packets separated by long
     exponential idles: exercises busy-period boundaries and backlog
     high-water marks *)
  let len = 1000 in
  let service = float_of_int len /. capacity in
  let per_flow f =
    let rng = Rng.create (seed + (1000 * (f + 1))) in
    let acc = ref [] in
    let at = ref (Rng.float rng (10.0 *. service)) in
    let k = ref 0 in
    while !k < pkts do
      let burst = Stdlib.min (1 + Rng.int rng 8) (pkts - !k) in
      for _ = 1 to burst do
        acc := { Workload.at = !at; flow = f; len; rate = None } :: !acc;
        incr k
      done;
      at := !at +. Rng.exponential rng ~mean:(float_of_int burst *. service *. float_of_int flows)
    done;
    List.rev !acc
  in
  let arrivals =
    List.concat (List.init flows per_flow)
    |> List.stable_sort (fun (a : Workload.arrival) b -> compare a.at b.at)
  in
  {
    Workload.capacity;
    weights = List.init flows (fun f -> (f, 0.95 *. capacity /. float_of_int flows));
    arrivals;
    reweights = [];
    churn = [];
    rate_changes = [];
    buffer = None;
  }

let skewed ~flows ~pkts ~seed =
  (* 16:1 weight spread, Poisson arrivals at ~90% of each reservation,
     mixed packet sizes: the shape Fig. 2's low-throughput-flow delay
     discussion cares about *)
  let raw = List.init flows (fun f -> (f, Float.of_int (1 lsl (f mod 5)))) in
  let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 raw in
  let weights = List.map (fun (f, w) -> (f, 0.95 *. capacity *. w /. total)) raw in
  let per_flow (f, r) =
    let rng = Rng.create (seed + (7919 * (f + 1))) in
    let at = ref 0.0 in
    List.init pkts (fun k ->
        let len = 500 * (1 + Rng.int rng 3) in
        at := !at +. Rng.exponential rng ~mean:(float_of_int len /. (0.9 *. r));
        ignore k;
        { Workload.at = !at; flow = f; len; rate = None })
  in
  let arrivals =
    List.concat_map per_flow weights
    |> List.stable_sort (fun (a : Workload.arrival) b -> compare a.at b.at)
  in
  { Workload.capacity; weights; arrivals; reweights = []; churn = [];
    rate_changes = []; buffer = None }

let pool i ~flows:_ ~pkts:_ ~seed =
  List.nth (Workload.deterministic_pool ~seed ~n:(i + 1) ()) i

let workloads =
  [
    ("cbr", "equal-weight CBR round-robin at 90% load", cbr);
    ("bursty", "8-deep bursts with long idles per flow", bursty);
    ("skewed", "16:1 weight spread, Poisson arrivals, mixed sizes", skewed);
    ("pool0", "frozen adversarial workload 0 (oracle pool)", pool 0);
    ("pool1", "frozen adversarial workload 1 (oracle pool)", pool 1);
    ("pool2", "frozen adversarial workload 2 (oracle pool)", pool 2);
    ("pool3", "frozen adversarial workload 3 (oracle pool)", pool 3);
  ]

(* ------------------------------------------------------------------ *)
(* Disciplines                                                          *)

let disciplines =
  [ "sfq"; "scfq"; "fifo"; "drr"; "wrr"; "virtual-clock"; "wfq"; "wfq-real";
    "fqs"; "wf2q"; "fair-airport"; "sfq-fast"; "scfq-fast"; "vc-fast"; "sp-pifo";
    "pifo-sfq"; "pifo-scfq"; "pifo-vc"; "pifo-fqs"; "pifo-wf2q" ]

(* Returns the sched, a v(t) sampler when the discipline has one, and
   — for SFQ — wires the tag hook so Tag events carry real tags. *)
let make_sched name tracer (w : Workload.t) =
  let weights = Weights.of_list w.weights in
  let cap = w.capacity in
  match name with
  | "sfq" ->
    let t = Sfq.create weights in
    Sfq.set_tag_hook t ~active:(Tracer.active_flag tracer)
      (fun ~now ~pkt ~stag ~ftag ~vtime ->
        Tracer.tag_hook tracer ~now ~pkt ~stag ~ftag ~vtime);
    (Sfq.sched t, Some (fun () -> Sfq.vtime t))
  | "scfq" ->
    let t = Sfq_sched.Scfq.create weights in
    (Sfq_sched.Scfq.sched t, Some (fun () -> Sfq_sched.Scfq.vtime t))
  | "sfq-fast" ->
    let t = Sfq_fastpath.Sfq_fast.create weights in
    (Sfq_fastpath.Sfq_fast.sched t, Some (fun () -> Sfq_fastpath.Sfq_fast.vtime t))
  | "scfq-fast" ->
    let t = Sfq_fastpath.Scfq_fast.create weights in
    (Sfq_fastpath.Scfq_fast.sched t, Some (fun () -> Sfq_fastpath.Scfq_fast.vtime t))
  | "sp-pifo" ->
    let t = Sfq_fastpath.Sp_pifo.create weights in
    (Sfq_fastpath.Sp_pifo.sched t, Some (fun () -> Sfq_fastpath.Sp_pifo.vtime t))
  | "pifo-sfq" ->
    let t = Sfq_pifo.Pifo_sched.create (Sfq_pifo.Programs.sfq weights) in
    (Sfq_pifo.Pifo_sched.sched t, Some (fun () -> Sfq_pifo.Pifo_sched.vtime t))
  | "pifo-scfq" ->
    let t = Sfq_pifo.Pifo_sched.create (Sfq_pifo.Programs.scfq weights) in
    (Sfq_pifo.Pifo_sched.sched t, Some (fun () -> Sfq_pifo.Pifo_sched.vtime t))
  | name ->
    let spec =
      match name with
      | "fifo" -> Sfq_experiments.Disc.Fifo
      | "drr" -> Sfq_experiments.Disc.Drr { quantum = 1000.0 }
      | "wrr" -> Sfq_experiments.Disc.Wrr
      | "virtual-clock" -> Sfq_experiments.Disc.Virtual_clock
      | "wfq" -> Sfq_experiments.Disc.Wfq { capacity = cap }
      | "wfq-real" -> Sfq_experiments.Disc.Wfq_real { capacity = cap }
      | "fqs" -> Sfq_experiments.Disc.Fqs { capacity = cap }
      | "wf2q" -> Sfq_experiments.Disc.Wf2q { capacity = cap }
      | "fair-airport" -> Sfq_experiments.Disc.Fair_airport
      | "vc-fast" -> Sfq_experiments.Disc.Virtual_clock_fast
      | "pifo-vc" -> Sfq_experiments.Disc.Pifo_vc
      | "pifo-fqs" -> Sfq_experiments.Disc.Pifo_fqs { capacity = cap }
      | "pifo-wf2q" -> Sfq_experiments.Disc.Pifo_wf2q { capacity = cap }
      | other -> raise (Arg.Bad (Printf.sprintf "unknown discipline %S" other))
    in
    (Sfq_experiments.Disc.make spec weights, None)

(* ------------------------------------------------------------------ *)
(* Commands                                                             *)

let list_cmd () =
  print_endline "disciplines:";
  List.iter (fun d -> Printf.printf "  %s\n" d) disciplines;
  print_endline "workloads:";
  List.iter (fun (n, doc, _) -> Printf.printf "  %-8s %s\n" n doc) workloads

let run_cmd disc workload flows pkts seed ring chrome_out jsonl_out quiet =
  match List.find_opt (fun (n, _, _) -> n = workload) workloads with
  | None ->
    Printf.eprintf "unknown workload %S; try `sfq_trace list`\n" workload;
    1
  | Some (_, _, build) ->
    if not (List.mem disc disciplines) then begin
      Printf.eprintf "unknown discipline %S; try `sfq_trace list`\n" disc;
      1
    end
    else begin
      let w = build ~flows ~pkts ~seed in
      let tracer = Tracer.create ~capacity:ring () in
      let sched, vtime = make_sched disc tracer w in
      let traced = Tracer.wrap ?vtime tracer sched in
      let outcome = Run.fixed_rate ~sched:traced ~monitors:[] w in
      if not quiet then begin
        Printf.printf "%s on %s: %d arrival(s), %d departure(s), finished at %g s\n"
          disc workload (List.length w.arrivals) outcome.Run.departures
          outcome.Run.finished_at;
        print_string (Summary.render tracer)
      end;
      (match jsonl_out with
      | Some path ->
        Export.write_jsonl tracer ~path;
        Printf.printf "wrote %s (%d events)\n" path (Tracer.length tracer)
      | None -> ());
      (match chrome_out with
      | Some path ->
        Export.write_chrome ~name:(disc ^ " / " ^ workload) tracer ~path;
        Printf.printf "wrote %s (open in https://ui.perfetto.dev)\n" path
      | None -> ());
      0
    end

open Cmdliner

let disc =
  Arg.(value & opt string "sfq" & info [ "disc"; "d" ] ~docv:"DISC" ~doc:"Scheduling discipline.")

let workload =
  Arg.(value & opt string "bursty" & info [ "workload"; "w" ] ~docv:"NAME" ~doc:"Named workload.")

let flows = Arg.(value & opt int 8 & info [ "flows" ] ~docv:"N" ~doc:"Flow count (generated workloads).")
let pkts = Arg.(value & opt int 200 & info [ "pkts" ] ~docv:"N" ~doc:"Packets per flow (generated workloads).")
let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")
let ring = Arg.(value & opt int 65536 & info [ "ring" ] ~docv:"N" ~doc:"Tracer ring capacity (events).")

let chrome_out =
  Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE"
         ~doc:"Export a Chrome trace_event JSON file (Perfetto).")

let jsonl_out =
  Arg.(value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE" ~doc:"Export a JSONL event dump.")

let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress the per-flow summary.")

let run_t =
  Term.(
    const (fun d w f p s r c j q -> Stdlib.exit (run_cmd d w f p s r c j q))
    $ disc $ workload $ flows $ pkts $ seed $ ring $ chrome_out $ jsonl_out $ quiet)

let run_cmd_t =
  Cmd.v (Cmd.info "run" ~doc:"Run a workload under a discipline and record a trace") run_t

let list_t = Term.(const list_cmd $ const ())
let list_cmd_t = Cmd.v (Cmd.info "list" ~doc:"List disciplines and workloads") list_t

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info = Cmd.info "sfq-trace" ~doc:"SFQ scheduler event tracing CLI" in
  exit (Cmd.eval (Cmd.group ~default info [ list_cmd_t; run_cmd_t ]))
