(* Tests for sfq.base: packets, flow tables, weights, the scheduler
   record contract helpers. *)

open Sfq_base

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let pkt ?rate ~flow ~seq ~len () = Packet.make ?rate ~flow ~seq ~len ~born:0.0 ()

(* ------------------------------------------------------------------ *)
(* Packet                                                               *)

let test_packet_fields () =
  let p = Packet.make ~flow:3 ~seq:7 ~len:100 ~born:1.5 () in
  check_int "flow" 3 p.Packet.flow;
  check_int "seq" 7 p.Packet.seq;
  check_int "len" 100 p.Packet.len;
  check_float "born" 1.5 p.Packet.born;
  check_bool "no rate" true (p.Packet.rate = None)

let test_packet_rate_override () =
  let p = pkt ~rate:64000.0 ~flow:1 ~seq:1 ~len:8 () in
  check_bool "rate" true (p.Packet.rate = Some 64000.0)

let test_packet_validation () =
  Alcotest.check_raises "len" (Invalid_argument "Packet.make: len must be positive")
    (fun () -> ignore (pkt ~flow:1 ~seq:1 ~len:0 ()));
  Alcotest.check_raises "seq" (Invalid_argument "Packet.make: seq must be positive")
    (fun () -> ignore (pkt ~flow:1 ~seq:0 ~len:1 ()));
  Alcotest.check_raises "rate" (Invalid_argument "Packet.make: rate must be positive")
    (fun () -> ignore (pkt ~rate:0.0 ~flow:1 ~seq:1 ~len:1 ()))

let test_packet_conversions () =
  check_int "bits" 1600 (Packet.bits_of_bytes 200);
  check_int "bytes" 200 (Packet.bytes_of_bits 1600)

let test_packet_compare () =
  let a = pkt ~flow:1 ~seq:2 ~len:1 () and b = pkt ~flow:1 ~seq:3 ~len:1 () in
  let c = pkt ~flow:2 ~seq:1 ~len:1 () in
  check_bool "same flow by seq" true (Packet.compare_by_flow_seq a b < 0);
  check_bool "by flow" true (Packet.compare_by_flow_seq a c < 0);
  check_bool "equal" true (Packet.compare_by_flow_seq a a = 0)

let test_packet_to_string () =
  let p = pkt ~flow:1 ~seq:2 ~len:3 () in
  check_bool "mentions flow" true
    (String.length (Packet.to_string p) > 0
    && String.index_opt (Packet.to_string p) '1' <> None)

(* ------------------------------------------------------------------ *)
(* Flow_table                                                           *)

let test_flow_table_default () =
  let t = Flow_table.create ~default:(fun f -> f * 10) in
  check_int "default computed" 30 (Flow_table.find t 3);
  check_bool "entry created" true (Flow_table.mem t 3);
  check_bool "find_opt does not create" true (Flow_table.find_opt t 4 = None);
  check_bool "still absent" false (Flow_table.mem t 4)

let test_flow_table_set_remove () =
  let t = Flow_table.create ~default:(fun _ -> 0) in
  Flow_table.set t 1 42;
  check_int "set" 42 (Flow_table.find t 1);
  Flow_table.remove t 1;
  check_int "default after remove" 0 (Flow_table.find t 1)

let test_flow_table_flows_sorted () =
  let t = Flow_table.create ~default:(fun _ -> ()) in
  List.iter (fun f -> ignore (Flow_table.find t f)) [ 5; 1; 3 ];
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5 ] (Flow_table.flows t)

let test_flow_table_fold_iter () =
  let t = Flow_table.create ~default:(fun _ -> 1) in
  List.iter (fun f -> ignore (Flow_table.find t f)) [ 1; 2; 3 ];
  check_int "fold count" 3 (Flow_table.fold t ~init:0 ~f:(fun _ v acc -> acc + v));
  let n = ref 0 in
  Flow_table.iter t ~f:(fun _ _ -> incr n);
  check_int "iter count" 3 !n;
  check_int "length" 3 (Flow_table.length t)

let test_flow_table_clear () =
  let t = Flow_table.create ~default:(fun _ -> 0) in
  ignore (Flow_table.find t 1);
  Flow_table.clear t;
  check_int "empty" 0 (Flow_table.length t)

(* ------------------------------------------------------------------ *)
(* Weights                                                              *)

let test_weights_uniform () =
  let w = Weights.uniform 2.5 in
  check_float "any flow" 2.5 (Weights.get w 1);
  check_float "another" 2.5 (Weights.get w 99)

let test_weights_of_list () =
  let w = Weights.of_list ~default:1.0 [ (1, 3.0); (2, 5.0) ] in
  check_float "listed" 3.0 (Weights.get w 1);
  check_float "listed 2" 5.0 (Weights.get w 2);
  check_float "default" 1.0 (Weights.get w 7)

let test_weights_validation () =
  Alcotest.check_raises "uniform" (Invalid_argument "Weights: weight must be positive")
    (fun () -> ignore (Weights.uniform 0.0));
  Alcotest.check_raises "of_list" (Invalid_argument "Weights: weight must be positive")
    (fun () -> ignore (Weights.of_list [ (1, -1.0) ]))

let test_weights_set_shadows () =
  let w = Weights.of_list [ (1, 3.0) ] in
  let w' = Weights.set w 1 9.0 in
  check_float "updated" 9.0 (Weights.get w' 1);
  check_float "original untouched" 3.0 (Weights.get w 1)

let test_weights_total () =
  let w = Weights.of_list ~default:1.0 [ (1, 3.0); (2, 5.0) ] in
  check_float "total" 9.0 (Weights.total w [ 1; 2; 3 ])

let test_weights_of_fun_checked () =
  let w = Weights.of_fun (fun f -> if f = 0 then -1.0 else 1.0) in
  check_float "valid flow" 1.0 (Weights.get w 1);
  Alcotest.check_raises "invalid returned weight"
    (Invalid_argument "Weights: weight must be positive") (fun () ->
      ignore (Weights.get w 0))

(* ------------------------------------------------------------------ *)
(* Sched helpers                                                        *)

let fifo_sched () =
  (* A minimal in-module FIFO to test the record helpers without
     depending on sfq.sched. *)
  let q = Queue.create () in
  {
    Sched.name = "test-fifo";
    enqueue = (fun ~now:_ p -> Queue.push p q);
    dequeue = (fun ~now:_ -> Queue.take_opt q);
    peek = (fun () -> Queue.peek_opt q);
    size = (fun () -> Queue.length q);
    backlog = (fun _ -> Queue.length q);
    evict = Sched.no_evict;
    close_flow = (fun ~now:_ _ -> []);
  }

let test_sched_is_empty () =
  let s = fifo_sched () in
  check_bool "empty" true (Sched.is_empty s);
  s.Sched.enqueue ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:1 ());
  check_bool "non-empty" false (Sched.is_empty s)

let test_sched_drain () =
  let s = fifo_sched () in
  let p1 = pkt ~flow:1 ~seq:1 ~len:1 () and p2 = pkt ~flow:1 ~seq:2 ~len:1 () in
  s.Sched.enqueue ~now:0.0 p1;
  s.Sched.enqueue ~now:0.0 p2;
  let drained = Sched.drain s ~now:1.0 in
  check_int "drained" 2 (List.length drained);
  check_bool "fifo order" true (List.map (fun p -> p.Packet.seq) drained = [ 1; 2 ]);
  check_bool "empty after" true (Sched.is_empty s)

let () =
  Alcotest.run "base"
    [
      ( "packet",
        [
          Alcotest.test_case "fields" `Quick test_packet_fields;
          Alcotest.test_case "rate override" `Quick test_packet_rate_override;
          Alcotest.test_case "validation" `Quick test_packet_validation;
          Alcotest.test_case "conversions" `Quick test_packet_conversions;
          Alcotest.test_case "compare" `Quick test_packet_compare;
          Alcotest.test_case "to_string" `Quick test_packet_to_string;
        ] );
      ( "flow_table",
        [
          Alcotest.test_case "default" `Quick test_flow_table_default;
          Alcotest.test_case "set/remove" `Quick test_flow_table_set_remove;
          Alcotest.test_case "flows sorted" `Quick test_flow_table_flows_sorted;
          Alcotest.test_case "fold/iter" `Quick test_flow_table_fold_iter;
          Alcotest.test_case "clear" `Quick test_flow_table_clear;
        ] );
      ( "weights",
        [
          Alcotest.test_case "uniform" `Quick test_weights_uniform;
          Alcotest.test_case "of_list" `Quick test_weights_of_list;
          Alcotest.test_case "validation" `Quick test_weights_validation;
          Alcotest.test_case "set shadows" `Quick test_weights_set_shadows;
          Alcotest.test_case "total" `Quick test_weights_total;
          Alcotest.test_case "of_fun checked" `Quick test_weights_of_fun_checked;
        ] );
      ( "sched",
        [
          Alcotest.test_case "is_empty" `Quick test_sched_is_empty;
          Alcotest.test_case "drain" `Quick test_sched_drain;
        ] );
    ]
