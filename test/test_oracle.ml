(* The theorem-oracle layer: directed monitor unit tests, every
   discipline against its applicable monitor set over deterministic
   pools of adversarial workloads, and the mutation self-check proving
   the monitors have teeth. *)

open Sfq_base
open Sfq_core
open Sfq_oracle

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let weights_of (w : Workload.t) = Weights.of_list ~default:1.0 w.Workload.weights

(* Monitor sets and frozen workload pools live in Sfq_oracle.Suite so
   the serial suite here, the domain-parallel determinism suite
   (test_par) and the bench/CLI consumers share one definition. *)
let structural = Suite.structural
let sfq_set = Suite.sfq_set
let theorem_pool = Suite.theorem_pool
let override_pool = Suite.override_pool
let reweight_pool = Suite.reweight_pool

(* A sweep is clean when no cell tripped a monitor. *)
let assert_clean_sweep cells =
  let outcomes = Run.sweep cells in
  List.iteri
    (fun i (c : Run.cell) ->
      match outcomes.(i).Run.violations with
      | [] -> ()
      | v :: _ ->
        Alcotest.failf "%s: %s@.%s" c.Run.label
          (Format.asprintf "%a" Monitor.pp_violation v)
          (Workload.to_string c.Run.workload))
    cells

(* ------------------------------------------------------------------ *)
(* Directed monitor tests                                               *)

let p ?rate ~flow ~seq ~len () = Packet.make ?rate ~flow ~seq ~len ~born:0.0 ()

let tripped m = Monitor.result m <> None

let test_work_conserving_trips () =
  let m = Monitor.work_conserving () in
  Monitor.observe m (Monitor.Arrival { at = 0.0; pkt = p ~flow:1 ~seq:1 ~len:100 () });
  Monitor.observe m (Monitor.Idle { at = 0.5; backlog = 1 });
  check_bool "idle with backlog trips" true (tripped m);
  let ok = Monitor.work_conserving () in
  Monitor.observe ok (Monitor.Idle { at = 0.0; backlog = 0 });
  check_bool "idle while empty is fine" false (tripped ok)

let test_flow_fifo_trips_on_reorder () =
  let m = Monitor.flow_fifo () in
  Monitor.observe m (Monitor.Arrival { at = 0.0; pkt = p ~flow:1 ~seq:1 ~len:100 () });
  Monitor.observe m (Monitor.Arrival { at = 0.0; pkt = p ~flow:1 ~seq:2 ~len:100 () });
  Monitor.observe m
    (Monitor.Departure { start = 0.0; finish = 1.0; pkt = p ~flow:1 ~seq:2 ~len:100 () });
  check_bool "out-of-order departure trips" true (tripped m)

let test_flow_fifo_trips_on_drop () =
  let m = Monitor.flow_fifo () in
  Monitor.observe m (Monitor.Arrival { at = 0.0; pkt = p ~flow:3 ~seq:1 ~len:100 () });
  Monitor.finalize m ~until:10.0;
  check_bool "undeparted packet trips at finalize" true (tripped m)

let test_tag_monotone_trips () =
  let v = ref 0.0 in
  let m = Monitor.tag_monotone ~name:"tag_monotone" ~vtime:(fun () -> !v) () in
  v := 1.0;
  Monitor.observe m (Monitor.Arrival { at = 0.0; pkt = p ~flow:1 ~seq:1 ~len:100 () });
  v := 0.5;
  Monitor.observe m (Monitor.Arrival { at = 1.0; pkt = p ~flow:1 ~seq:2 ~len:100 () });
  check_bool "vtime regression trips" true (tripped m)

let test_tag_monotone_idle_reset_allowed () =
  let v = ref 5.0 in
  let m = Monitor.tag_monotone ~name:"tag_monotone" ~vtime:(fun () -> !v) () in
  Monitor.observe m (Monitor.Arrival { at = 0.0; pkt = p ~flow:1 ~seq:1 ~len:100 () });
  v := 0.0;
  Monitor.observe m (Monitor.Idle { at = 1.0; backlog = 0 });
  check_bool "busy-period reset is allowed" false (tripped m)

let test_scfq_delay_trips () =
  (* eq. 56 bound for the lone packet: EAT + l2max/C + l/r = 32.2 s;
     a departure at 110 s is far outside it. *)
  let m =
    Monitor.scfq_delay ~flows:[ 1; 2 ]
      ~lmax:(fun _ -> 1000.0)
      ~rate:(fun _ -> 45.0)
      ~capacity:100.0 ()
  in
  Monitor.observe m (Monitor.Arrival { at = 0.0; pkt = p ~flow:1 ~seq:1 ~len:1000 () });
  Monitor.observe m
    (Monitor.Departure { start = 100.0; finish = 110.0; pkt = p ~flow:1 ~seq:1 ~len:1000 () });
  check_bool "late departure trips eq. 56" true (tripped m)

let test_sfq_throughput_trips () =
  (* Flow 1 backlogged for 110 s but served only 1000 bits; Theorem 2
     promises 45·110 − 45·2000/100 − 1000 = 3050 bits. *)
  let m =
    Monitor.sfq_throughput ~flows:[ 1; 2 ]
      ~lmax:(fun _ -> 1000.0)
      ~rate:(fun _ -> 45.0)
      ~capacity:100.0 ()
  in
  Monitor.observe m (Monitor.Arrival { at = 0.0; pkt = p ~flow:1 ~seq:1 ~len:1000 () });
  for seq = 1 to 10 do
    Monitor.observe m (Monitor.Arrival { at = 0.0; pkt = p ~flow:2 ~seq ~len:1000 () })
  done;
  for seq = 1 to 10 do
    let start = float_of_int (seq - 1) *. 10.0 in
    Monitor.observe m
      (Monitor.Departure { start; finish = start +. 10.0; pkt = p ~flow:2 ~seq ~len:1000 () })
  done;
  Monitor.observe m
    (Monitor.Departure { start = 100.0; finish = 110.0; pkt = p ~flow:1 ~seq:1 ~len:1000 () });
  Monitor.finalize m ~until:110.0;
  check_bool "starved flow trips Theorem 2" true (tripped m)

(* ------------------------------------------------------------------ *)
(* Acceptance sweeps                                                    *)

let test_sfq_theorems () = assert_clean_sweep (Suite.sfq_cells ())

let test_stress_all_disciplines () =
  let cells = Suite.stress_cells () in
  assert_clean_sweep cells;
  (* the pool must actually exercise the drop machinery, or the clean
     sweep is vacuous *)
  let outcomes = Run.sweep cells in
  let drops =
    Array.fold_left (fun acc (o : Run.outcome) -> acc + o.Run.drops) 0 outcomes
  in
  check_bool "stress pool causes drops" true (drops > 0)
let test_scfq_theorems () = assert_clean_sweep (Suite.scfq_cells ())
let test_sfq_delay_under_overrides () = assert_clean_sweep (Suite.sfq_override_cells ())
let test_structural_all_disciplines () = assert_clean_sweep (Suite.structural_cells ())
let test_reweight_structural () = assert_clean_sweep (Suite.reweight_cells ())

(* ------------------------------------------------------------------ *)
(* Mutation self-check                                                  *)

let test_mutants_all_caught () =
  List.iter
    (fun (mode, cell) ->
      let o = Run.run_cell cell in
      let expected = Mutant.expected_monitor mode in
      let names = List.map (fun (v : Monitor.violation) -> v.Monitor.monitor) o.Run.violations in
      if not (List.mem expected names) then
        Alcotest.failf "mutant %s: expected monitor %s to trip; tripped: [%s]"
          (Mutant.name mode) expected
          (String.concat ", " names))
    (Suite.mutant_cells ())

let test_real_sfq_passes_mutant_workloads () =
  (* The crafted traces are within the theorems for the real scheduler:
     the mutants trip because of their bugs, not because the workloads
     are outside the guarantees. *)
  List.iter
    (fun mode ->
      let w = Mutant.workload mode in
      let s = Sfq.create (weights_of w) in
      let monitors =
        (* drops void the theorem premises: the lossy workload gets the
           structural + conservation set, like Suite.mutant_cells *)
        match mode with
        | Mutant.Wrong_queue_drop -> Suite.stress_set (Sfq.sched s)
        | _ -> sfq_set w ~vtime:(fun () -> Sfq.vtime s)
      in
      match (Run.fixed_rate ~sched:(Sfq.sched s) ~monitors w).Run.violations with
      | [] -> ()
      | v :: _ ->
        Alcotest.failf "real sfq tripped on the %s workload: %s" (Mutant.name mode)
          (Format.asprintf "%a" Monitor.pp_violation v))
    Mutant.all

(* ------------------------------------------------------------------ *)
(* Workload generator plumbing                                          *)

let test_pool_deterministic () =
  let a = Workload.deterministic_pool ~seed:17 ~n:5 () in
  let b = Workload.deterministic_pool ~seed:17 ~n:5 () in
  check_bool "same seed, same pool" true (a = b);
  let c = Workload.deterministic_pool ~seed:18 ~n:5 () in
  check_bool "different seed, different pool" true (a <> c)

let test_pool_is_adversarial () =
  (* The pool must actually contain the stressors the generator
     advertises: bursts, long idle gaps and multi-flow traces. *)
  let has_burst (w : Workload.t) =
    let rec go = function
      | (a : Workload.arrival) :: (b : Workload.arrival) :: tl ->
        a.Workload.at = b.Workload.at || go (b :: tl)
      | _ -> false
    in
    go w.Workload.arrivals
  in
  let has_idle_gap (w : Workload.t) =
    let srv = 1000.0 /. w.Workload.capacity in
    let rec go = function
      | (a : Workload.arrival) :: (b : Workload.arrival) :: tl ->
        b.Workload.at -. a.Workload.at >= 5.0 *. srv || go (b :: tl)
      | _ -> false
    in
    go w.Workload.arrivals
  in
  check_bool "bursts present" true (List.exists has_burst theorem_pool);
  check_bool "idle gaps present" true (List.exists has_idle_gap theorem_pool);
  check_bool "multi-flow traces present" true
    (List.exists (fun w -> List.length (Workload.flows w) >= 3) theorem_pool);
  check_bool "rate overrides present in override pool" true
    (List.exists
       (fun (w : Workload.t) ->
         List.exists (fun (a : Workload.arrival) -> a.Workload.rate <> None) w.Workload.arrivals)
       override_pool);
  check_bool "reweights present in reweight pool" true
    (List.exists (fun (w : Workload.t) -> w.Workload.reweights <> []) reweight_pool)

let test_shrink_candidates_valid () =
  let w = List.hd override_pool in
  let n = List.length w.Workload.arrivals in
  let count = ref 0 in
  Workload.shrink w (fun w' ->
      incr count;
      check_bool "no new arrivals" true (List.length w'.Workload.arrivals <= n);
      let rec sorted = function
        | (a : Workload.arrival) :: (b : Workload.arrival) :: tl ->
          a.Workload.at <= b.Workload.at && sorted (b :: tl)
        | _ -> true
      in
      check_bool "still time-sorted" true (sorted w'.Workload.arrivals);
      check_bool "capacity preserved" true (w'.Workload.capacity = w.Workload.capacity));
  check_bool "shrinker yields candidates" true (!count > 0)

(* A passing qcheck property through the arbitrary (exercises the
   generator + shrinker wiring end to end under a fixed PRNG). *)
let prop_sfq_structural_random =
  QCheck.Test.make ~count:40 ~name:"sfq structural monitors on random workloads"
    (Workload.arbitrary ~rate_overrides:true ())
    (fun w ->
      let s = Sfq.create (weights_of w) in
      (Run.fixed_rate ~sched:(Sfq.sched s) ~monitors:(structural ()) w).Run.violations
      = [])

let test_outcome_counts_departures () =
  let w = List.hd theorem_pool in
  let s = Sfq.create (weights_of w) in
  let o = Run.fixed_rate ~sched:(Sfq.sched s) ~monitors:[] w in
  check_int "every arrival departs" (List.length w.Workload.arrivals) o.Run.departures

(* ------------------------------------------------------------------ *)

let q test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x0c5 |])
    ~speed_level:`Quick test

let () =
  Alcotest.run "oracle"
    [
      ( "monitors",
        [
          Alcotest.test_case "work_conserving trips" `Quick test_work_conserving_trips;
          Alcotest.test_case "flow_fifo reorder" `Quick test_flow_fifo_trips_on_reorder;
          Alcotest.test_case "flow_fifo drop" `Quick test_flow_fifo_trips_on_drop;
          Alcotest.test_case "tag_monotone regression" `Quick test_tag_monotone_trips;
          Alcotest.test_case "tag_monotone idle reset" `Quick
            test_tag_monotone_idle_reset_allowed;
          Alcotest.test_case "scfq_delay trips" `Quick test_scfq_delay_trips;
          Alcotest.test_case "sfq_throughput trips" `Quick test_sfq_throughput_trips;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "sfq: Theorems 1/2/4 over 120 workloads" `Quick
            test_sfq_theorems;
          Alcotest.test_case "scfq: Theorem 1 + eq. 56 over 120 workloads" `Quick
            test_scfq_theorems;
          Alcotest.test_case "sfq: Theorem 4 under rate overrides" `Quick
            test_sfq_delay_under_overrides;
          Alcotest.test_case "all disciplines: structural invariants" `Quick
            test_structural_all_disciplines;
          Alcotest.test_case "sfq/scfq: structural under reweights" `Quick
            test_reweight_structural;
          Alcotest.test_case "all disciplines: conservation under churn/overload"
            `Quick test_stress_all_disciplines;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "each mutation is caught" `Quick test_mutants_all_caught;
          Alcotest.test_case "real sfq passes the mutant workloads" `Quick
            test_real_sfq_passes_mutant_workloads;
        ] );
      ( "workload",
        [
          Alcotest.test_case "pool determinism" `Quick test_pool_deterministic;
          Alcotest.test_case "pool adversarial content" `Quick test_pool_is_adversarial;
          Alcotest.test_case "shrink candidates valid" `Quick test_shrink_candidates_valid;
          Alcotest.test_case "run counts departures" `Quick test_outcome_counts_departures;
          q prop_sfq_structural_random;
        ] );
    ]
