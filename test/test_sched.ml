(* Tests for sfq.sched: Tag_queue, Flow_queues, FIFO, WRR, DRR, the GPS
   fluid clock, WFQ (both clocks), FQS, SCFQ, EAT, Virtual Clock and
   Delay EDD — plus generic conservation/per-flow-FIFO properties run
   against every discipline. *)

open Sfq_base
open Sfq_sched

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let pkt ?rate ~flow ~seq ~len () = Packet.make ?rate ~flow ~seq ~len ~born:0.0 ()

let flow_seq p = (p.Packet.flow, p.Packet.seq)

(* ------------------------------------------------------------------ *)
(* Tag_queue                                                            *)

let test_tag_queue_order () =
  let q = Tag_queue.create () in
  Tag_queue.push q ~tag:3.0 (pkt ~flow:1 ~seq:1 ~len:1 ());
  Tag_queue.push q ~tag:1.0 (pkt ~flow:2 ~seq:1 ~len:1 ());
  Tag_queue.push q ~tag:2.0 (pkt ~flow:3 ~seq:1 ~len:1 ());
  let pop () = match Tag_queue.pop q with Some (_, p) -> p.Packet.flow | None -> -1 in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list int)) "tag order" [ 2; 3; 1 ] [ first; second; third ]

let test_tag_queue_fifo_ties () =
  let q = Tag_queue.create () in
  Tag_queue.push q ~tag:1.0 (pkt ~flow:1 ~seq:1 ~len:1 ());
  Tag_queue.push q ~tag:1.0 (pkt ~flow:2 ~seq:1 ~len:1 ());
  check_bool "arrival tie-break" true
    (match Tag_queue.pop q with Some (_, p) -> p.Packet.flow = 1 | None -> false)

let test_tag_queue_low_rate_tie () =
  let w = function 1 -> 100.0 | _ -> 1.0 in
  let q = Tag_queue.create ~tie:(Tag_queue.Low_rate w) () in
  Tag_queue.push q ~tag:1.0 (pkt ~flow:1 ~seq:1 ~len:1 ());
  Tag_queue.push q ~tag:1.0 (pkt ~flow:2 ~seq:1 ~len:1 ());
  check_bool "low-rate flow preferred on tie" true
    (match Tag_queue.pop q with Some (_, p) -> p.Packet.flow = 2 | None -> false)

let test_tag_queue_high_rate_tie () =
  let w = function 1 -> 100.0 | _ -> 1.0 in
  let q = Tag_queue.create ~tie:(Tag_queue.High_rate w) () in
  Tag_queue.push q ~tag:1.0 (pkt ~flow:2 ~seq:1 ~len:1 ());
  Tag_queue.push q ~tag:1.0 (pkt ~flow:1 ~seq:1 ~len:1 ());
  check_bool "high-rate flow preferred on tie" true
    (match Tag_queue.pop q with Some (_, p) -> p.Packet.flow = 1 | None -> false)

let test_tag_queue_backlog () =
  let q = Tag_queue.create () in
  Tag_queue.push q ~tag:1.0 (pkt ~flow:1 ~seq:1 ~len:1 ());
  Tag_queue.push q ~tag:2.0 (pkt ~flow:1 ~seq:2 ~len:1 ());
  check_int "backlog" 2 (Tag_queue.backlog q 1);
  ignore (Tag_queue.pop q);
  check_int "after pop" 1 (Tag_queue.backlog q 1);
  check_int "other flow" 0 (Tag_queue.backlog q 2)

let test_tag_queue_peek () =
  let q = Tag_queue.create () in
  Tag_queue.push q ~tag:2.0 (pkt ~flow:1 ~seq:1 ~len:1 ());
  Tag_queue.push q ~tag:1.0 (pkt ~flow:2 ~seq:1 ~len:1 ());
  (match Tag_queue.peek q with
  | Some (tag, p) ->
    check_float "peek tag" 1.0 tag;
    check_int "peek flow" 2 p.Packet.flow
  | None -> Alcotest.fail "expected peek");
  check_int "size unchanged" 2 (Tag_queue.size q)

(* ------------------------------------------------------------------ *)
(* Flow_queues                                                          *)

let test_flow_queues_fifo () =
  let fq = Flow_queues.create () in
  Flow_queues.push fq (pkt ~flow:1 ~seq:1 ~len:1 ());
  Flow_queues.push fq (pkt ~flow:1 ~seq:2 ~len:1 ());
  Flow_queues.push fq (pkt ~flow:2 ~seq:1 ~len:1 ());
  check_int "size" 3 (Flow_queues.size fq);
  check_int "backlog" 2 (Flow_queues.backlog fq 1);
  check_bool "head" true
    (match Flow_queues.head fq 1 with Some p -> p.Packet.seq = 1 | None -> false);
  check_bool "pop fifo" true
    (match Flow_queues.pop fq 1 with Some p -> p.Packet.seq = 1 | None -> false);
  check_bool "flow 2 nonempty" false (Flow_queues.flow_is_empty fq 2);
  check_bool "pop empty flow" true (Flow_queues.pop fq 3 = None)

(* ------------------------------------------------------------------ *)
(* Flow_heap                                                            *)

let test_flow_heap_ring_wraparound () =
  (* The per-flow ring starts at 8 slots; popping 5 then refilling
     makes the live region wrap the physical array, and the next
     doubling has to unwrap it. Drain order must stay push order. *)
  let fh = Flow_heap.create () in
  let pushed = ref [] in
  let popped = ref [] in
  let next = ref 0 in
  let push n =
    for _ = 1 to n do
      incr next;
      pushed := !next :: !pushed;
      Flow_heap.push fh ~flow:7 ~key:(float_of_int !next) ~tie:0.0 !next
    done
  in
  let pop n =
    for _ = 1 to n do
      match Flow_heap.pop fh with
      | Some e -> popped := e.Flow_heap.value :: !popped
      | None -> Alcotest.fail "unexpected empty"
    done
  in
  push 8;
  pop 5;
  push 12;
  check_int "size" 15 (Flow_heap.size fh);
  check_int "backlog" 15 (Flow_heap.backlog fh 7);
  pop 15;
  check_bool "empty" true (Flow_heap.is_empty fh);
  Alcotest.(check (list int)) "fifo across wrap + growth" (List.rev !pushed)
    (List.rev !popped)

let flow_heap_ops_gen =
  (* [Some (flow, key increment)] pushes, [None] pops. Increments keep
     per-flow keys non-decreasing, as the precondition requires. *)
  QCheck.Gen.(list_size (1 -- 120) (option (pair (1 -- 3) (0 -- 5))))

let flow_heap_ops_print =
  QCheck.Print.(list (option (pair int int)))

let prop_flow_heap_single_flow_fifo =
  QCheck.Test.make ~name:"flow_heap: single flow is a FIFO" ~count:200
    (QCheck.make flow_heap_ops_gen ~print:flow_heap_ops_print)
    (fun ops ->
      let fh = Flow_heap.create () in
      let model = Queue.create () in
      let key = ref 0 in
      let uid = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some (_, inc) ->
            key := !key + inc;
            incr uid;
            Flow_heap.push fh ~flow:1 ~key:(float_of_int !key) ~tie:0.0 !uid;
            Queue.push !uid model
          | None -> (
            match (Flow_heap.pop fh, Queue.is_empty model) with
            | None, true -> ()
            | Some e, false ->
              if e.Flow_heap.value <> Queue.pop model then ok := false
            | _ -> ok := false))
        ops;
      !ok && Flow_heap.size fh = Queue.length model)

let prop_flow_heap_matches_global_heap =
  (* Pop order must be ascending (key, tie, uid) over everything
     queued — exactly what one global heap over all entries gives. *)
  QCheck.Test.make ~name:"flow_heap: pops = global (key, tie, uid) order" ~count:200
    (QCheck.make flow_heap_ops_gen ~print:flow_heap_ops_print)
    (fun ops ->
      let fh = Flow_heap.create () in
      let keys = Hashtbl.create 4 in
      let model = ref [] in
      let uid = ref (-1) in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some (flow, inc) ->
            let k = (try Hashtbl.find keys flow with Not_found -> 0) + inc in
            Hashtbl.replace keys flow k;
            incr uid;
            let key = float_of_int k and tie = float_of_int flow in
            Flow_heap.push fh ~flow ~key ~aux:(key +. 1.0) ~tie !uid;
            model := (key, tie, !uid) :: !model
          | None -> (
            let expect =
              match List.sort compare !model with
              | [] -> None
              | min :: _ -> Some min
            in
            match (Flow_heap.pop fh, expect) with
            | None, None -> ()
            | Some e, Some ((k, _, u) as min) ->
              if e.Flow_heap.key <> k || e.Flow_heap.uid <> u
                 || e.Flow_heap.value <> u
                 || e.Flow_heap.aux <> k +. 1.0
              then ok := false
              else model := List.filter (fun x -> x <> min) !model
            | _ -> ok := false))
        ops;
      !ok && Flow_heap.size fh = List.length !model)

(* ------------------------------------------------------------------ *)
(* Generic discipline properties                                       *)

(* Scenario: a list of (flow, len) injected at t = 0.1 * i, with all
   dequeues at the end. Checks: conservation (exact multiset) and
   per-flow FIFO. *)
let conservation_scenario sched ops =
  let seqs = Hashtbl.create 8 in
  let injected = ref [] in
  List.iteri
    (fun i (flow, len) ->
      let seq = (try Hashtbl.find seqs flow with Not_found -> 0) + 1 in
      Hashtbl.replace seqs flow seq;
      let p = Packet.make ~flow ~seq ~len ~born:(0.1 *. float_of_int i) () in
      injected := flow_seq p :: !injected;
      sched.Sched.enqueue ~now:p.Packet.born p)
    ops;
  let drained = Sched.drain sched ~now:1000.0 in
  let out = List.map flow_seq drained in
  let conserved = List.sort compare out = List.sort compare !injected in
  let per_flow_fifo =
    let last = Hashtbl.create 8 in
    List.for_all
      (fun (flow, seq) ->
        let prev = try Hashtbl.find last flow with Not_found -> 0 in
        Hashtbl.replace last flow seq;
        seq = prev + 1)
      out
  in
  conserved && per_flow_fifo

let disciplines () =
  let w = Weights.of_list ~default:1.0 [ (1, 1.0); (2, 2.0); (3, 0.5); (4, 4.0) ] in
  [
    ("fifo", Fifo.sched (Fifo.create ()));
    ("wrr", Wrr.sched (Wrr.create w));
    ("drr", Drr.sched (Drr.create ~quantum:700.0 w));
    ("wfq-fluid", Wfq.sched (Wfq.create ~capacity:1000.0 w));
    ("wfq-real", Wfq.sched (Wfq.create ~capacity:1000.0 ~clock:`Real w));
    ("fqs", Fqs.sched (Fqs.create ~capacity:1000.0 w));
    ("scfq", Scfq.sched (Scfq.create w));
    ("virtual-clock", Virtual_clock.sched (Virtual_clock.create w));
    ("sfq", Sfq_core.Sfq.sched (Sfq_core.Sfq.create w));
    ("fair-airport", Sfq_core.Fair_airport.sched (Sfq_core.Fair_airport.create w));
  ]

let ops_gen =
  QCheck.Gen.(
    list_size (1 -- 60) (pair (1 -- 4) (map (fun n -> 1 + (n mod 1000)) small_nat)))

let prop_conservation name make_sched =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: conservation + per-flow FIFO" name)
    ~count:150
    (QCheck.make ops_gen ~print:QCheck.Print.(list (pair int int)))
    (fun ops -> conservation_scenario (make_sched ()) ops)

let conservation_tests =
  List.map
    (fun (name, _) ->
      prop_conservation name (fun () -> List.assoc name (disciplines ())))
    (disciplines ())

(* Peek agrees with the next dequeue for every discipline. *)
let prop_peek_consistent name =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: peek = next dequeue" name)
    ~count:100
    (QCheck.make ops_gen ~print:QCheck.Print.(list (pair int int)))
    (fun ops ->
      let sched = List.assoc name (disciplines ()) in
      let seqs = Hashtbl.create 8 in
      List.iteri
        (fun i (flow, len) ->
          let seq = (try Hashtbl.find seqs flow with Not_found -> 0) + 1 in
          Hashtbl.replace seqs flow seq;
          sched.Sched.enqueue ~now:(0.1 *. float_of_int i)
            (Packet.make ~flow ~seq ~len ~born:0.0 ()))
        ops;
      let rec check () =
        let peeked = sched.Sched.peek () in
        let popped = sched.Sched.dequeue ~now:1000.0 in
        match (peeked, popped) with
        | None, None -> true
        | Some a, Some b -> flow_seq a = flow_seq b && check ()
        | _ -> false
      in
      check ())

let peek_tests =
  (* Fair Airport's peek is documented as best-effort under pending
     regulator releases; exclude it here (its own suite covers it). *)
  List.filter_map
    (fun (name, _) -> if name = "fair-airport" then None else Some (prop_peek_consistent name))
    (disciplines ())

(* ------------------------------------------------------------------ *)
(* WRR                                                                  *)

let test_wrr_round_robin () =
  let w = Weights.uniform 1.0 in
  let s = Wrr.create w in
  List.iter
    (fun (flow, seq) -> Wrr.enqueue s ~now:0.0 (pkt ~flow ~seq ~len:10 ()))
    [ (1, 1); (1, 2); (2, 1); (2, 2) ];
  let order = List.map (fun p -> p.Packet.flow) (Sched.drain (Wrr.sched s) ~now:0.0) in
  Alcotest.(check (list int)) "alternates" [ 1; 2; 1; 2 ] order

let test_wrr_credits_proportional () =
  let w = Weights.of_list [ (1, 3.0); (2, 1.0) ] in
  let s = Wrr.create w in
  for seq = 1 to 6 do
    Wrr.enqueue s ~now:0.0 (pkt ~flow:1 ~seq ~len:10 ())
  done;
  for seq = 1 to 2 do
    Wrr.enqueue s ~now:0.0 (pkt ~flow:2 ~seq ~len:10 ())
  done;
  let order = List.map (fun p -> p.Packet.flow) (Sched.drain (Wrr.sched s) ~now:0.0) in
  (* Flow 1 sends 3 per round, flow 2 sends 1. *)
  Alcotest.(check (list int)) "3:1 rounds" [ 1; 1; 1; 2; 1; 1; 1; 2 ] order

let test_wrr_skips_empty () =
  let s = Wrr.create (Weights.uniform 1.0) in
  Wrr.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  check_bool "deq" true (Wrr.dequeue s ~now:0.0 <> None);
  check_bool "empty" true (Wrr.dequeue s ~now:0.0 = None);
  Wrr.enqueue s ~now:1.0 (pkt ~flow:2 ~seq:1 ~len:10 ());
  check_bool "next flow served" true
    (match Wrr.dequeue s ~now:1.0 with Some p -> p.Packet.flow = 2 | None -> false)

(* ------------------------------------------------------------------ *)
(* DRR                                                                  *)

let test_drr_equal_weights_byte_fair () =
  (* Flow 1 sends 500-bit packets, flow 2 sends 1000-bit packets; with
     equal weights DRR must serve roughly equal BYTES per round, i.e.
     two flow-1 packets per flow-2 packet. *)
  let w = Weights.uniform 1.0 in
  let s = Drr.create ~quantum:1000.0 w in
  for seq = 1 to 8 do
    Drr.enqueue s ~now:0.0 (pkt ~flow:1 ~seq ~len:500 ())
  done;
  for seq = 1 to 4 do
    Drr.enqueue s ~now:0.0 (pkt ~flow:2 ~seq ~len:1000 ())
  done;
  let order = List.map (fun p -> p.Packet.flow) (Sched.drain (Drr.sched s) ~now:0.0) in
  Alcotest.(check (list int)) "2:1 packets = equal bytes"
    [ 1; 1; 2; 1; 1; 2; 1; 1; 2; 1; 1; 2 ]
    order

let test_drr_deficit_carries_over () =
  (* Quantum 600 < packet 1000: flow needs two rounds per packet. *)
  let w = Weights.uniform 1.0 in
  let s = Drr.create ~quantum:600.0 w in
  Drr.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:1000 ());
  Drr.enqueue s ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:100 ());
  let order =
    List.map (fun p -> (p.Packet.flow, p.Packet.seq)) (Sched.drain (Drr.sched s) ~now:0.0)
  in
  (* Flow 1's head does not fit in 600; flow 2's does; flow 1 sends on
     its second visit. *)
  Alcotest.(check (list (pair int int))) "carry-over" [ (2, 1); (1, 1) ] order

let test_drr_deficit_reset_on_empty () =
  let w = Weights.uniform 1.0 in
  let s = Drr.create ~quantum:1000.0 w in
  Drr.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:100 ());
  ignore (Drr.dequeue s ~now:0.0);
  check_float "deficit reset" 0.0 (Drr.deficit s 1)

let test_drr_weighted_quantum () =
  let w = Weights.of_list [ (1, 2.0); (2, 1.0) ] in
  let s = Drr.create ~quantum:1000.0 w in
  for seq = 1 to 4 do
    Drr.enqueue s ~now:0.0 (pkt ~flow:1 ~seq ~len:1000 ());
    Drr.enqueue s ~now:0.0 (pkt ~flow:2 ~seq ~len:1000 ())
  done;
  let order = List.map (fun p -> p.Packet.flow) (Sched.drain (Drr.sched s) ~now:0.0) in
  Alcotest.(check (list int)) "2:1 service" [ 1; 1; 2; 1; 1; 2; 2; 2 ] order

let test_drr_invalid_quantum () =
  Alcotest.check_raises "quantum" (Invalid_argument "Drr.create: quantum must be positive")
    (fun () -> ignore (Drr.create ~quantum:0.0 (Weights.uniform 1.0)))

let prop_drr_deficit_bounded =
  (* Whenever a flow is backlogged, 0 <= deficit < quantum*w + lmax. *)
  QCheck.Test.make ~name:"drr: deficit invariant" ~count:150
    (QCheck.make ops_gen ~print:QCheck.Print.(list (pair int int)))
    (fun ops ->
      let w = Weights.uniform 1.0 in
      let s = Drr.create ~quantum:800.0 w in
      let seqs = Hashtbl.create 8 in
      List.iter
        (fun (flow, len) ->
          let seq = (try Hashtbl.find seqs flow with Not_found -> 0) + 1 in
          Hashtbl.replace seqs flow seq;
          Drr.enqueue s ~now:0.0 (pkt ~flow ~seq ~len ()))
        ops;
      let ok = ref true in
      let rec drain () =
        (match Drr.dequeue s ~now:0.0 with
        | Some _ ->
          List.iter
            (fun flow ->
              let d = Drr.deficit s flow in
              if d < 0.0 || d >= 800.0 +. 1000.0 then ok := false)
            [ 1; 2; 3; 4 ];
          drain ()
        | None -> ())
      in
      drain ();
      !ok)

let prop_drr_deficit_bounded_weighted =
  (* The mli's promise with non-uniform weights: whenever flow f is
     backlogged, 0 <= deficit f < quantum*w_f + lmax; and a drained
     flow's counter is reset to 0. *)
  QCheck.Test.make ~name:"drr: weighted deficit invariant" ~count:150
    (QCheck.make ops_gen ~print:QCheck.Print.(list (pair int int)))
    (fun ops ->
      let weights = [ (1, 0.5); (2, 1.0); (3, 2.0); (4, 4.0) ] in
      let quantum = 600.0 in
      let s = Drr.create ~quantum (Weights.of_list ~default:1.0 weights) in
      let seqs = Hashtbl.create 8 in
      List.iter
        (fun (flow, len) ->
          let seq = (try Hashtbl.find seqs flow with Not_found -> 0) + 1 in
          Hashtbl.replace seqs flow seq;
          Drr.enqueue s ~now:0.0 (pkt ~flow ~seq ~len ()))
        ops;
      let ok = ref true in
      let rec drain () =
        match Drr.dequeue s ~now:0.0 with
        | Some _ ->
          List.iter
            (fun (flow, wf) ->
              let d = Drr.deficit s flow in
              if Drr.backlog s flow > 0 && (d < 0.0 || d >= (quantum *. wf) +. 1000.0)
              then ok := false)
            weights;
          drain ()
        | None -> ()
      in
      drain ();
      List.iter (fun (flow, _) -> if Drr.deficit s flow <> 0.0 then ok := false) weights;
      !ok)

(* ------------------------------------------------------------------ *)
(* GPS fluid clock                                                      *)

let test_gps_single_flow_slope () =
  (* One backlogged flow of weight r: dv/dt = C/r. *)
  let w = Weights.uniform 2.0 in
  let gps = Gps.create ~capacity:10.0 w in
  let _ = Gps.on_arrival gps ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:100 ()) in
  (* Flow stays fluid-backlogged until v = 100/2 = 50, i.e. t = 10. *)
  check_float "v(1)" 5.0 (Gps.vtime gps ~now:1.0);
  check_float "v(4)" 20.0 (Gps.vtime gps ~now:4.0)

let test_gps_two_flow_slope () =
  let w = Weights.uniform 1.0 in
  let gps = Gps.create ~capacity:10.0 w in
  let _ = Gps.on_arrival gps ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:1000 ()) in
  let _ = Gps.on_arrival gps ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:1000 ()) in
  (* Two unit-weight flows: dv/dt = 10/2 = 5. *)
  check_float "v(2)" 10.0 (Gps.vtime gps ~now:2.0)

let test_gps_departure_changes_slope () =
  let w = Weights.uniform 1.0 in
  let gps = Gps.create ~capacity:10.0 w in
  let _ = Gps.on_arrival gps ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ()) in
  let _ = Gps.on_arrival gps ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:100 ()) in
  (* Both backlogged: slope 5 until v = 10 (flow 1 leaves) at t = 2;
     then slope 10: v(3) = 20. *)
  check_float "v(3)" 20.0 (Gps.vtime gps ~now:3.0);
  check_int "one flow left" 1 (Gps.backlogged_flows gps)

let test_gps_busy_period_reset () =
  let w = Weights.uniform 1.0 in
  let gps = Gps.create ~capacity:10.0 w in
  let _, f1 = Gps.on_arrival gps ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ()) in
  check_float "first finish" 10.0 f1;
  (* Fluid empties at t=1; next arrival at t=5 starts a new busy
     period with v=0 and fresh tags. *)
  let s2, f2 = Gps.on_arrival gps ~now:5.0 (pkt ~flow:1 ~seq:2 ~len:10 ()) in
  check_float "start resets" 0.0 s2;
  check_float "finish resets" 10.0 f2

let test_gps_tags_eq_1_2 () =
  (* Eqs. 1-2: S = max(v(A), F_prev); F = S + l/r. *)
  let w = Weights.uniform 2.0 in
  let gps = Gps.create ~capacity:4.0 w in
  let s1, f1 = Gps.on_arrival gps ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:8 ()) in
  check_float "S1" 0.0 s1;
  check_float "F1" 4.0 f1;
  (* Same instant, same flow: S = F_prev. *)
  let s2, f2 = Gps.on_arrival gps ~now:0.0 (pkt ~flow:1 ~seq:2 ~len:8 ()) in
  check_float "S2 = F1" 4.0 s2;
  check_float "F2" 8.0 f2

let test_gps_example2_vtime () =
  (* Example 2 with C = 10 (packets of 1000 bits, weight 1000): flow f
     dumps C+1 packets at 0; v(1) must be C. *)
  let c = 10.0 in
  let w = Weights.uniform 1000.0 in
  let gps = Gps.create ~capacity:(c *. 1000.0) w in
  for seq = 1 to 11 do
    let _ = Gps.on_arrival gps ~now:0.0 (pkt ~flow:1 ~seq ~len:1000 ()) in
    ()
  done;
  check_float "v(1) = C" c (Gps.vtime gps ~now:1.0)

(* ------------------------------------------------------------------ *)
(* WFQ / FQS ordering                                                   *)

let test_wfq_orders_by_finish () =
  (* Two flows, weight 1 and 2, same-length packets at t=0: the
     heavier flow's finish tags are half as large. *)
  let w = Weights.of_list [ (1, 1.0); (2, 2.0) ] in
  let s = Wfq.create ~capacity:3.0 w in
  Wfq.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:6 ());
  Wfq.enqueue s ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:6 ());
  Wfq.enqueue s ~now:0.0 (pkt ~flow:2 ~seq:2 ~len:6 ());
  (* F: flow1 -> 6; flow2 -> 3, 6. Order: 2.1, then tie (6,6) by
     arrival: 1.1 before 2.2. *)
  let order = List.map flow_seq (Sched.drain (Wfq.sched s) ~now:0.0) in
  Alcotest.(check (list (pair int int))) "finish order" [ (2, 1); (1, 1); (2, 2) ] order

let test_fqs_orders_by_start () =
  let w = Weights.of_list [ (1, 1.0); (2, 2.0) ] in
  let s = Fqs.create ~capacity:3.0 w in
  Fqs.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:6 ());
  Fqs.enqueue s ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:6 ());
  Fqs.enqueue s ~now:0.0 (pkt ~flow:2 ~seq:2 ~len:6 ());
  (* S: flow1 -> 0; flow2 -> 0, 3. FQS order: 1.1 (arrival tie), 2.1,
     2.2. *)
  let order = List.map flow_seq (Sched.drain (Fqs.sched s) ~now:0.0) in
  Alcotest.(check (list (pair int int))) "start order" [ (1, 1); (2, 1); (2, 2) ] order

let test_wfq_real_clock_example2 () =
  (* v(1) = C under the practical clock too. *)
  let c = 10.0 in
  let w = Weights.uniform 1000.0 in
  let s = Wfq.create ~capacity:(c *. 1000.0) ~clock:`Real w in
  for seq = 1 to 11 do
    Wfq.enqueue s ~now:0.0 (pkt ~flow:1 ~seq ~len:1000 ())
  done;
  check_float "v(1) = C" c (Wfq.vtime s ~now:1.0)

let test_wfq_real_clock_resets_on_idle () =
  let w = Weights.uniform 1.0 in
  let s = Wfq.create ~capacity:10.0 ~clock:`Real w in
  Wfq.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  ignore (Wfq.dequeue s ~now:0.5);
  (* Server polls an empty queue at 1.0: clock restarts. *)
  check_bool "drain empty" true (Wfq.dequeue s ~now:1.0 = None);
  check_float "v resets" 0.0 (Wfq.vtime s ~now:2.0)

(* ------------------------------------------------------------------ *)
(* SCFQ                                                                 *)

let test_scfq_tags_and_vtime () =
  let w = Weights.uniform 2.0 in
  let s = Scfq.create w in
  Scfq.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:8 ());
  Scfq.enqueue s ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:4 ());
  check_float "v initially 0" 0.0 (Scfq.vtime s);
  (* F: flow1 -> 4, flow2 -> 2. Pop flow2 first; v becomes its finish
     tag. *)
  (match Scfq.dequeue s ~now:0.0 with
  | Some p -> check_int "flow2 first" 2 p.Packet.flow
  | None -> Alcotest.fail "expected packet");
  check_float "v = finish of in-service" 2.0 (Scfq.vtime s)

let test_scfq_arrival_inherits_vtime () =
  let w = Weights.uniform 1.0 in
  let s = Scfq.create w in
  Scfq.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  ignore (Scfq.dequeue s ~now:0.0);
  (* v = 10 now; a new flow's packet starts at v, not 0. *)
  Scfq.enqueue s ~now:0.1 (pkt ~flow:2 ~seq:1 ~len:10 ());
  (match Scfq.dequeue s ~now:0.1 with
  | Some _ -> ()
  | None -> Alcotest.fail "expected packet");
  check_float "v = 10 + 10" 20.0 (Scfq.vtime s)

let test_scfq_busy_period_reset () =
  let w = Weights.uniform 1.0 in
  let s = Scfq.create w in
  Scfq.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  ignore (Scfq.dequeue s ~now:0.0);
  check_bool "idle poll" true (Scfq.dequeue s ~now:1.0 = None);
  check_float "v reset" 0.0 (Scfq.vtime s)

(* SCFQ shares SFQ's fairness measure (Golestani's bound): check it as
   a property on random workloads over a variable-rate server. *)
let prop_scfq_fairness =
  QCheck.Test.make ~name:"scfq: H within l_f/r_f + l_m/r_m on variable-rate servers"
    ~count:40
    QCheck.(pair (int_range 1 1000) (int_range 20 60))
    (fun (seed, n) ->
      let open Sfq_netsim in
      let open Sfq_analysis in
      let rng = Sfq_util.Rng.create seed in
      let r = 10.0 in
      let weights = Weights.uniform r in
      let sim = Sim.create () in
      let rate = Rate_process.fc_random ~c:50.0 ~delta:400.0 ~seg:2.0 ~spread:40.0 ~rng in
      let server =
        Server.create sim ~name:"scfq" ~rate ~sched:(Scfq.sched (Scfq.create weights)) ()
      in
      let log = Service_log.attach server in
      let lmax = ref 0 in
      Sim.schedule sim ~at:0.0 (fun () ->
          for seq = 1 to n do
            let l1 = 100 + Sfq_util.Rng.int rng 900 in
            let l2 = 100 + Sfq_util.Rng.int rng 900 in
            lmax := Stdlib.max !lmax (Stdlib.max l1 l2);
            Server.inject server (pkt ~flow:1 ~seq ~len:l1 ());
            Server.inject server (pkt ~flow:2 ~seq ~len:l2 ())
          done);
      Sim.run_all sim ();
      let h = Fairness.exact_h log ~f:1 ~m:2 ~r_f:r ~r_m:r ~until:(Sim.now sim) in
      h <= (2.0 *. float_of_int !lmax /. r) +. 1e-6)

(* DRR long-run byte fairness: equal weights, random lengths, full
   drain — total service differs by at most one quantum + one max
   packet per flow. *)
let prop_drr_byte_fairness =
  QCheck.Test.make ~name:"drr: long-run byte fairness" ~count:100
    QCheck.(pair (list_of_size Gen.(10 -- 60) (int_range 1 1000))
              (list_of_size Gen.(10 -- 60) (int_range 1 1000)))
    (fun (lens1, lens2) ->
      let quantum = 700.0 in
      let s = Drr.create ~quantum (Weights.uniform 1.0) in
      List.iteri (fun i len -> Drr.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:(i + 1) ~len ())) lens1;
      List.iteri (fun i len -> Drr.enqueue s ~now:0.0 (pkt ~flow:2 ~seq:(i + 1) ~len ())) lens2;
      (* Track cumulative bytes served per flow while BOTH remain
         backlogged; the imbalance is bounded by quantum + lmax. *)
      let w1 = ref 0 and w2 = ref 0 in
      let q1 = ref (List.length lens1) and q2 = ref (List.length lens2) in
      let ok = ref true in
      let rec drain () =
        match Drr.dequeue s ~now:0.0 with
        | None -> ()
        | Some p ->
          if p.Packet.flow = 1 then begin
            w1 := !w1 + p.Packet.len;
            decr q1
          end
          else begin
            w2 := !w2 + p.Packet.len;
            decr q2
          end;
          if !q1 > 0 && !q2 > 0 then begin
            if abs (!w1 - !w2) > int_of_float quantum + 1000 then ok := false
          end;
          drain ()
      in
      drain ();
      !ok)

(* ------------------------------------------------------------------ *)
(* EAT                                                                  *)

let test_eat_chain () =
  let e = Eat.create () in
  (* eq. 37: EAT(p1) = A(p1); then floor = EAT + l/r. *)
  check_float "first = arrival" 1.0 (Eat.on_arrival e ~now:1.0 ~flow:1 ~len:10 ~rate:10.0);
  (* Second arrives early: EAT = floor = 2.0. *)
  check_float "early arrival floored" 2.0
    (Eat.on_arrival e ~now:1.5 ~flow:1 ~len:10 ~rate:10.0);
  (* Third arrives late: EAT = arrival. *)
  check_float "late arrival" 10.0 (Eat.on_arrival e ~now:10.0 ~flow:1 ~len:10 ~rate:10.0)

let test_eat_flows_independent () =
  let e = Eat.create () in
  ignore (Eat.on_arrival e ~now:0.0 ~flow:1 ~len:100 ~rate:1.0);
  check_float "flow 2 unaffected" 0.0 (Eat.on_arrival e ~now:0.0 ~flow:2 ~len:1 ~rate:1.0)

let test_eat_reset () =
  let e = Eat.create () in
  ignore (Eat.on_arrival e ~now:0.0 ~flow:1 ~len:100 ~rate:1.0);
  Eat.reset_flow e 1;
  check_float "fresh after reset" 5.0 (Eat.on_arrival e ~now:5.0 ~flow:1 ~len:1 ~rate:1.0)

let test_eat_invalid_rate () =
  let e = Eat.create () in
  Alcotest.check_raises "rate" (Invalid_argument "Eat.on_arrival: rate must be positive")
    (fun () -> ignore (Eat.on_arrival e ~now:0.0 ~flow:1 ~len:1 ~rate:0.0))

(* ------------------------------------------------------------------ *)
(* Virtual Clock                                                        *)

let test_vc_orders_by_stamp () =
  let w = Weights.of_list [ (1, 1.0); (2, 2.0) ] in
  let s = Virtual_clock.create w in
  Virtual_clock.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:4 ());
  Virtual_clock.enqueue s ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:4 ());
  (* Stamps: flow1 -> 0+4/1 = 4; flow2 -> 0+4/2 = 2. *)
  let order = List.map (fun p -> p.Packet.flow) (Sched.drain (Virtual_clock.sched s) ~now:0.0) in
  Alcotest.(check (list int)) "stamp order" [ 2; 1 ] order

let test_vc_punishes_past_burst () =
  (* Flow 1 bursts 5 packets (stamps 1..5); flow 2 starts at t=0 too.
     After flow 1's burst is queued, flow 2's packets interleave ahead
     of flow 1's later stamps. *)
  let w = Weights.uniform 1.0 in
  let s = Virtual_clock.create w in
  for seq = 1 to 5 do
    Virtual_clock.enqueue s ~now:0.0 (pkt ~flow:1 ~seq ~len:1 ())
  done;
  Virtual_clock.enqueue s ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:1 ());
  let order = List.map flow_seq (Sched.drain (Virtual_clock.sched s) ~now:0.0) in
  (* Stamps: f1 -> 1,2,3,4,5; f2 -> 1 (tie with f1's first, arrival
     order favours f1). Flow 2's single packet beats f1's seq >= 2. *)
  Alcotest.(check (pair int int)) "second served is flow 2" (2, 1) (List.nth order 1)

let test_vc_rate_override () =
  let w = Weights.uniform 1.0 in
  let s = Virtual_clock.create w in
  Virtual_clock.enqueue s ~now:0.0 (pkt ~rate:4.0 ~flow:1 ~seq:1 ~len:4 ());
  Virtual_clock.enqueue s ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:2 ());
  (* Flow 1 stamp = 4/4 = 1 < flow 2 stamp = 2. *)
  let order = List.map (fun p -> p.Packet.flow) (Sched.drain (Virtual_clock.sched s) ~now:0.0) in
  Alcotest.(check (list int)) "override respected" [ 1; 2 ] order

(* ------------------------------------------------------------------ *)
(* Delay EDD                                                            *)

let specs =
  [
    (1, { Delay_edd.rate = 10.0; deadline = 1.0; max_len = 10 });
    (2, { Delay_edd.rate = 10.0; deadline = 5.0; max_len = 10 });
  ]

let test_edd_orders_by_deadline () =
  let s = Delay_edd.create specs in
  Delay_edd.enqueue s ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:10 ());
  Delay_edd.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  (* Deadlines: flow2 -> 5; flow1 -> 1. *)
  let order = List.map (fun p -> p.Packet.flow) (Sched.drain (Delay_edd.sched s) ~now:0.0) in
  Alcotest.(check (list int)) "EDF" [ 1; 2 ] order;
  check_bool "recorded deadline" true (Delay_edd.deadline_of_last s 1 = Some 1.0)

let test_edd_deadline_uses_eat () =
  let s = Delay_edd.create specs in
  Delay_edd.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  (* Second packet arrives immediately; EAT = 1.0, deadline 2.0. *)
  Delay_edd.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:2 ~len:10 ());
  ignore (Delay_edd.dequeue s ~now:0.0);
  ignore (Delay_edd.dequeue s ~now:0.0);
  check_bool "deadline = EAT + d" true (Delay_edd.deadline_of_last s 1 = Some 2.0)

let test_edd_undeclared_flow () =
  let s = Delay_edd.create specs in
  Alcotest.check_raises "undeclared" (Invalid_argument "Delay_edd: undeclared flow 9")
    (fun () -> Delay_edd.enqueue s ~now:0.0 (pkt ~flow:9 ~seq:1 ~len:10 ()))

let test_edd_schedulable_accepts () =
  (* Two flows at 10 b/s with generous deadlines on a 100 b/s server:
     clearly schedulable. *)
  check_bool "schedulable" true (Delay_edd.schedulable specs ~capacity:100.0 ())

let test_edd_schedulable_rejects_overload () =
  let bad = [ (1, { Delay_edd.rate = 60.0; deadline = 1.0; max_len = 10 });
              (2, { Delay_edd.rate = 60.0; deadline = 1.0; max_len = 10 }) ] in
  check_bool "over capacity" false (Delay_edd.schedulable bad ~capacity:100.0 ())

let test_edd_schedulable_rejects_tight_deadline () =
  (* Utilization is fine but the deadline is shorter than even one
     packet's transmission among competitors. *)
  let tight =
    [
      (1, { Delay_edd.rate = 40.0; deadline = 0.05; max_len = 100 });
      (2, { Delay_edd.rate = 40.0; deadline = 0.05; max_len = 100 });
    ]
  in
  check_bool "tight deadlines rejected" false
    (Delay_edd.schedulable tight ~capacity:100.0 ())

let test_edd_empty_schedulable () =
  check_bool "vacuous" true (Delay_edd.schedulable [] ~capacity:1.0 ())

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "sched"
    [
      ( "tag_queue",
        [
          Alcotest.test_case "order" `Quick test_tag_queue_order;
          Alcotest.test_case "fifo ties" `Quick test_tag_queue_fifo_ties;
          Alcotest.test_case "low-rate tie" `Quick test_tag_queue_low_rate_tie;
          Alcotest.test_case "high-rate tie" `Quick test_tag_queue_high_rate_tie;
          Alcotest.test_case "backlog" `Quick test_tag_queue_backlog;
          Alcotest.test_case "peek" `Quick test_tag_queue_peek;
        ] );
      ("flow_queues", [ Alcotest.test_case "fifo" `Quick test_flow_queues_fifo ]);
      ( "flow_heap",
        [
          Alcotest.test_case "ring wraparound" `Quick test_flow_heap_ring_wraparound;
          q prop_flow_heap_single_flow_fifo;
          q prop_flow_heap_matches_global_heap;
        ] );
      ("conservation", List.map q conservation_tests);
      ("peek", List.map q peek_tests);
      ( "wrr",
        [
          Alcotest.test_case "round robin" `Quick test_wrr_round_robin;
          Alcotest.test_case "credits proportional" `Quick test_wrr_credits_proportional;
          Alcotest.test_case "skips empty" `Quick test_wrr_skips_empty;
        ] );
      ( "drr",
        [
          Alcotest.test_case "byte fair" `Quick test_drr_equal_weights_byte_fair;
          Alcotest.test_case "deficit carries" `Quick test_drr_deficit_carries_over;
          Alcotest.test_case "deficit reset" `Quick test_drr_deficit_reset_on_empty;
          Alcotest.test_case "weighted quantum" `Quick test_drr_weighted_quantum;
          Alcotest.test_case "invalid quantum" `Quick test_drr_invalid_quantum;
          q prop_drr_deficit_bounded;
          q prop_drr_deficit_bounded_weighted;
          q prop_drr_byte_fairness;
        ] );
      ( "gps",
        [
          Alcotest.test_case "single flow slope" `Quick test_gps_single_flow_slope;
          Alcotest.test_case "two flow slope" `Quick test_gps_two_flow_slope;
          Alcotest.test_case "departure changes slope" `Quick test_gps_departure_changes_slope;
          Alcotest.test_case "busy period reset" `Quick test_gps_busy_period_reset;
          Alcotest.test_case "tags eqs 1-2" `Quick test_gps_tags_eq_1_2;
          Alcotest.test_case "example 2 vtime" `Quick test_gps_example2_vtime;
        ] );
      ( "wfq_fqs",
        [
          Alcotest.test_case "wfq finish order" `Quick test_wfq_orders_by_finish;
          Alcotest.test_case "fqs start order" `Quick test_fqs_orders_by_start;
          Alcotest.test_case "real clock example 2" `Quick test_wfq_real_clock_example2;
          Alcotest.test_case "real clock idle reset" `Quick test_wfq_real_clock_resets_on_idle;
        ] );
      ( "scfq",
        [
          Alcotest.test_case "tags and vtime" `Quick test_scfq_tags_and_vtime;
          Alcotest.test_case "arrival inherits vtime" `Quick test_scfq_arrival_inherits_vtime;
          Alcotest.test_case "busy period reset" `Quick test_scfq_busy_period_reset;
          q prop_scfq_fairness;
        ] );
      ( "eat",
        [
          Alcotest.test_case "chain" `Quick test_eat_chain;
          Alcotest.test_case "flows independent" `Quick test_eat_flows_independent;
          Alcotest.test_case "reset" `Quick test_eat_reset;
          Alcotest.test_case "invalid rate" `Quick test_eat_invalid_rate;
        ] );
      ( "virtual_clock",
        [
          Alcotest.test_case "stamp order" `Quick test_vc_orders_by_stamp;
          Alcotest.test_case "punishes burst" `Quick test_vc_punishes_past_burst;
          Alcotest.test_case "rate override" `Quick test_vc_rate_override;
        ] );
      ( "delay_edd",
        [
          Alcotest.test_case "EDF order" `Quick test_edd_orders_by_deadline;
          Alcotest.test_case "deadline uses EAT" `Quick test_edd_deadline_uses_eat;
          Alcotest.test_case "undeclared flow" `Quick test_edd_undeclared_flow;
          Alcotest.test_case "schedulable accepts" `Quick test_edd_schedulable_accepts;
          Alcotest.test_case "rejects overload" `Quick test_edd_schedulable_rejects_overload;
          Alcotest.test_case "rejects tight deadline" `Quick test_edd_schedulable_rejects_tight_deadline;
          Alcotest.test_case "empty schedulable" `Quick test_edd_empty_schedulable;
        ] );
    ]
