(* Tests for Bench_json, the strict parser + schema checker behind
   validate_bench_json.exe: it must accept the repo's checked-in
   BENCH_sched.json and a minimal valid document, and reject the
   failure shapes a broken emitter actually produces — truncation,
   bare NaN, missing fields, empty series, a wrong schema tag, a
   disabled-tracer overhead over budget, a replay-series regression. *)

let check_bool = Alcotest.(check bool)

let valid_doc =
  {|{
  "schema": "sfq-bench-sched/7",
  "quick": true,
  "unit": "ns per enqueue+dequeue",
  "meta": {"git_sha": "deadbeef", "timestamp_utc": "2026-08-06T00:00:00Z", "hostname": "box", "domains": 2},
  "flow_scaling": [
    {"discipline": "sfq", "flows": 4, "ns_per_packet": 217.6, "ns_p50": 217.6, "ns_p99": 230.1},
    {"discipline": "scfq", "flows": 64, "ns_per_packet": null, "ns_p50": null, "ns_p99": null}
  ],
  "depth_scaling": [
    {"discipline": "sfq", "flows": 8, "depth": 1024, "ns_per_packet": 3.2e2, "ns_p50": 318.0, "ns_p99": 330.0}
  ],
  "fastpath": [
    {"discipline": "sfq", "flows": 512, "ns_per_packet": 210.0, "ns_p50": 210.0, "ns_p99": 220.0, "allocations_per_packet": 14.0},
    {"discipline": "sfq-fast", "flows": 512, "ns_per_packet": 100.0, "ns_p50": 100.0, "ns_p99": 110.0, "allocations_per_packet": 0.000},
    {"discipline": "scfq", "flows": 512, "ns_per_packet": 190.0, "ns_p50": 190.0, "ns_p99": 200.0, "allocations_per_packet": 12.0},
    {"discipline": "scfq-fast", "flows": 512, "ns_per_packet": 95.0, "ns_p50": 95.0, "ns_p99": 105.0, "allocations_per_packet": 0.000},
    {"discipline": "virtual-clock", "flows": 512, "ns_per_packet": 180.0, "ns_p50": 180.0, "ns_p99": 190.0, "allocations_per_packet": 12.0},
    {"discipline": "vc-fast", "flows": 512, "ns_per_packet": 90.0, "ns_p50": 90.0, "ns_p99": 100.0, "allocations_per_packet": 0.000},
    {"discipline": "sp-pifo", "flows": 512, "ns_per_packet": 80.0, "ns_p50": 80.0, "ns_p99": 90.0, "allocations_per_packet": 0.000, "measured_unfairness": 2.5, "fairness_bound": 4.0, "unfairness_excess": -1.5, "pairs_checked": 28}
  ],
  "pifo": [
    {"discipline": "pifo-sfq", "flows": 512, "ns_per_packet": 110.0, "ns_p50": 110.0, "ns_p99": 120.0, "allocations_per_packet": 0.000},
    {"discipline": "pifo-scfq", "flows": 512, "ns_per_packet": 105.0, "ns_p50": 105.0, "ns_p99": 115.0, "allocations_per_packet": 0.000},
    {"discipline": "pifo-vc", "flows": 512, "ns_per_packet": 100.0, "ns_p50": 100.0, "ns_p99": 110.0, "allocations_per_packet": 0.000}
  ],
  "tracing_overhead": [
    {"mode": "untraced", "flows": 512, "depth": 64, "ns_per_packet": 300.0, "ns_p50": 300.0, "ns_p99": 310.0, "overhead_pct": null},
    {"mode": "disabled", "flows": 512, "depth": 64, "ns_per_packet": 303.0, "ns_p50": 303.0, "ns_p99": 311.0, "overhead_pct": 1.0},
    {"mode": "ring", "flows": 512, "depth": 64, "ns_per_packet": 330.0, "ns_p50": 330.0, "ns_p99": 340.0, "overhead_pct": 10.0},
    {"mode": "jsonl", "flows": 512, "depth": 64, "ns_per_packet": 900.0, "ns_p50": 900.0, "ns_p99": 950.0, "overhead_pct": 200.0}
  ],
  "parallel": [
    {"series": "oracle-sweep", "cells": 1320, "domains": 4, "serial_s": 2.1, "parallel_s": 0.8, "speedup": 2.62, "identical": true}
  ],
  "netsim": [
    {"discipline": "sfq", "flows": 100000, "hops": 2, "packets_per_sec": 350000.0, "peak_rss_kb": 110000, "rss_bound_kb": 1048576},
    {"discipline": "sfq-fast", "flows": 100000, "hops": 2, "packets_per_sec": 400000.0, "peak_rss_kb": 105000, "rss_bound_kb": 1048576},
    {"discipline": "pifo-sfq", "flows": 100000, "hops": 2, "packets_per_sec": 380000.0, "peak_rss_kb": null, "rss_bound_kb": 1048576}
  ],
  "replay": [
    {"tier": "single", "cells": 32, "ok": 32},
    {"tier": "net", "cells": 20, "ok": 20},
    {"tier": "control", "cells": 4, "ok": 4},
    {"tier": "kills", "cells": 5, "ok": 5}
  ]
}|}

(* Build a document with one part overridden — rejection tests swap in
   exactly the broken fragment they target. *)
let meta_frag =
  {|{"git_sha": "deadbeef", "timestamp_utc": "2026-08-06T00:00:00Z", "hostname": "box", "domains": 2}|}

let flow_frag =
  {|[{"discipline": "sfq", "flows": 1, "ns_per_packet": 1.0, "ns_p50": 1.0, "ns_p99": 1.2}]|}

let depth_frag =
  {|[{"discipline": "sfq", "flows": 1, "depth": 2, "ns_per_packet": 1.0, "ns_p50": 1.0, "ns_p99": 1.2}]|}

let overhead_frag =
  {|[{"mode": "untraced", "flows": 512, "depth": 64, "ns_per_packet": 300.0, "ns_p50": 300.0, "ns_p99": 310.0, "overhead_pct": null},
     {"mode": "disabled", "flows": 512, "depth": 64, "ns_per_packet": 303.0, "ns_p50": 303.0, "ns_p99": 311.0, "overhead_pct": 1.0},
     {"mode": "ring", "flows": 512, "depth": 64, "ns_per_packet": 330.0, "ns_p50": 330.0, "ns_p99": 340.0, "overhead_pct": 10.0},
     {"mode": "jsonl", "flows": 512, "depth": 64, "ns_per_packet": 900.0, "ns_p50": 900.0, "ns_p99": 950.0, "overhead_pct": 200.0}]|}

let parallel_frag =
  {|[{"series": "oracle-sweep", "cells": 1320, "domains": 2, "serial_s": 2.0, "parallel_s": 1.9, "speedup": 1.05, "identical": true}]|}

(* A minimal fastpath series that satisfies every gate: all seven
   disciplines present, sfq-fast at exactly zero allocations and
   faster than sfq at the largest flow count, sp-pifo with a budget. *)
let fastpath_frag =
  {|[{"discipline": "sfq", "flows": 512, "ns_per_packet": 210.0, "ns_p50": 210.0, "ns_p99": 220.0, "allocations_per_packet": 14.0},
     {"discipline": "sfq-fast", "flows": 512, "ns_per_packet": 100.0, "ns_p50": 100.0, "ns_p99": 110.0, "allocations_per_packet": 0.000},
     {"discipline": "scfq", "flows": 512, "ns_per_packet": 190.0, "ns_p50": 190.0, "ns_p99": 200.0, "allocations_per_packet": 12.0},
     {"discipline": "scfq-fast", "flows": 512, "ns_per_packet": 95.0, "ns_p50": 95.0, "ns_p99": 105.0, "allocations_per_packet": 0.000},
     {"discipline": "virtual-clock", "flows": 512, "ns_per_packet": 180.0, "ns_p50": 180.0, "ns_p99": 190.0, "allocations_per_packet": 12.0},
     {"discipline": "vc-fast", "flows": 512, "ns_per_packet": 90.0, "ns_p50": 90.0, "ns_p99": 100.0, "allocations_per_packet": 0.000},
     {"discipline": "sp-pifo", "flows": 512, "ns_per_packet": 80.0, "ns_p50": 80.0, "ns_p99": 90.0, "allocations_per_packet": 0.000, "measured_unfairness": 2.5, "fairness_bound": 4.0, "unfairness_excess": -1.5, "pairs_checked": 28}]|}

(* A minimal pifo series that satisfies the rank-program gates against
   fastpath_frag's sfq-fast at 100 ns: pifo-sfq within the 15% budget
   and allocation-free, all three disciplines present. *)
let pifo_frag =
  {|[{"discipline": "pifo-sfq", "flows": 512, "ns_per_packet": 110.0, "ns_p50": 110.0, "ns_p99": 120.0, "allocations_per_packet": 0.000},
     {"discipline": "pifo-scfq", "flows": 512, "ns_per_packet": 105.0, "ns_p50": 105.0, "ns_p99": 115.0, "allocations_per_packet": 0.000},
     {"discipline": "pifo-vc", "flows": 512, "ns_per_packet": 100.0, "ns_p50": 100.0, "ns_p99": 110.0, "allocations_per_packet": 0.000}]|}

(* A minimal netsim series that satisfies the E27 gates: all three
   oracle-bearing disciplines present, peak RSS under its own bound
   (null allowed — the explicit "/proc unavailable" marker). *)
let netsim_frag =
  {|[{"discipline": "sfq", "flows": 100000, "hops": 2, "packets_per_sec": 350000.0, "peak_rss_kb": 110000, "rss_bound_kb": 1048576},
     {"discipline": "sfq-fast", "flows": 100000, "hops": 2, "packets_per_sec": 400000.0, "peak_rss_kb": null, "rss_bound_kb": 1048576},
     {"discipline": "pifo-sfq", "flows": 100000, "hops": 2, "packets_per_sec": 380000.0, "peak_rss_kb": 120000, "rss_bound_kb": 1048576}]|}

(* A minimal replay series that satisfies the E28 gates: all four
   tiers present, single/net/kills all-ok, at least one control cell
   diverging. *)
let replay_frag =
  {|[{"tier": "single", "cells": 32, "ok": 32},
     {"tier": "net", "cells": 20, "ok": 20},
     {"tier": "control", "cells": 4, "ok": 1},
     {"tier": "kills", "cells": 5, "ok": 5}]|}

let mk ?(schema = "sfq-bench-sched/7") ?(meta = meta_frag) ?(flow = flow_frag)
    ?(depth = depth_frag) ?(fastpath = fastpath_frag) ?(pifo = pifo_frag)
    ?(overhead = overhead_frag) ?(parallel = parallel_frag) ?(netsim = netsim_frag)
    ?(replay = replay_frag) () =
  Printf.sprintf
    {|{"schema": %S, "meta": %s, "flow_scaling": %s, "depth_scaling": %s, "fastpath": %s, "pifo": %s, "tracing_overhead": %s, "parallel": %s, "netsim": %s, "replay": %s}|}
    schema meta flow depth fastpath pifo overhead parallel netsim replay

let expect_error name needle contents =
  match Bench_json.validate contents with
  | Ok () -> Alcotest.fail (name ^ ": expected rejection, got Ok")
  | Error msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    check_bool
      (Printf.sprintf "%s: error %S mentions %S" name msg needle)
      true (contains msg needle)

let test_accepts_valid_sample () =
  (match Bench_json.validate valid_doc with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("valid sample rejected: " ^ msg));
  match Bench_json.validate (mk ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("minimal doc rejected: " ^ msg)

let test_accepts_checked_in_file () =
  (* cwd is test/ under `dune runtest` but the workspace root under
     `dune exec`; probe both. *)
  let path =
    if Sys.file_exists "../BENCH_sched.json" then "../BENCH_sched.json"
    else "BENCH_sched.json"
  in
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Bench_json.validate contents with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("BENCH_sched.json rejected: " ^ msg)

let test_rejects_truncated () =
  (* Cutting the document anywhere must fail: either a parse error or
     a missing series — never Ok. *)
  let n = String.length valid_doc in
  for len = 0 to n - 1 do
    match Bench_json.validate (String.sub valid_doc 0 len) with
    | Ok () -> Alcotest.fail (Printf.sprintf "truncation at %d accepted" len)
    | Error _ -> ()
  done

let test_rejects_nan () =
  (* A naive Printf emitter writes literal nan/inf; both are illegal
     JSON and must not parse. *)
  let subst from into =
    let b = Buffer.create (String.length valid_doc) in
    let i = ref 0 in
    let n = String.length valid_doc and nf = String.length from in
    while !i < n do
      if !i + nf <= n && String.sub valid_doc !i nf = from then begin
        Buffer.add_string b into;
        i := !i + nf
      end
      else begin
        Buffer.add_char b valid_doc.[!i];
        incr i
      end
    done;
    Buffer.contents b
  in
  (* "nan" trips the n-of-"null" literal path; "inf" falls through to
     the number parser with an empty chunk. Either way: rejected. *)
  expect_error "nan" "expected u" (subst "217.6," "nan,");
  expect_error "inf" "bad number" (subst "217.6," "inf,");
  expect_error "negative ns" "positive or null" (subst "217.6," "-1.0,")

let test_rejects_missing_fields () =
  expect_error "no schema" "missing field \"schema\""
    {|{"flow_scaling": [], "depth_scaling": []}|};
  expect_error "wrong schema" "unexpected schema" (mk ~schema:"sfq-bench-sched/1" ());
  expect_error "stale schema/2" "unexpected schema" (mk ~schema:"sfq-bench-sched/2" ());
  expect_error "stale schema/3" "unexpected schema" (mk ~schema:"sfq-bench-sched/3" ());
  expect_error "stale schema/4" "unexpected schema" (mk ~schema:"sfq-bench-sched/4" ());
  expect_error "stale schema/5" "unexpected schema" (mk ~schema:"sfq-bench-sched/5" ());
  expect_error "stale schema/6" "stale schema" (mk ~schema:"sfq-bench-sched/6" ());
  expect_error "meta without domains" "missing field \"domains\""
    (mk
       ~meta:{|{"git_sha": "deadbeef", "timestamp_utc": "2026-08-06T00:00:00Z", "hostname": "box"}|}
       ());
  expect_error "no meta" "missing field \"meta\""
    (Printf.sprintf
       {|{"schema": "sfq-bench-sched/7", "flow_scaling": %s, "depth_scaling": %s, "tracing_overhead": %s}|}
       flow_frag depth_frag overhead_frag);
  expect_error "empty git_sha" "git_sha"
    (mk
       ~meta:{|{"git_sha": "", "timestamp_utc": "2026-08-06T00:00:00Z", "hostname": "box"}|}
       ());
  expect_error "no depth_scaling" "missing field \"depth_scaling\""
    (Printf.sprintf
       {|{"schema": "sfq-bench-sched/7", "meta": %s, "flow_scaling": %s, "tracing_overhead": %s}|}
       meta_frag flow_frag overhead_frag);
  expect_error "no fastpath" "missing field \"fastpath\""
    (Printf.sprintf
       {|{"schema": "sfq-bench-sched/7", "meta": %s, "flow_scaling": %s, "depth_scaling": %s, "tracing_overhead": %s}|}
       meta_frag flow_frag depth_frag overhead_frag);
  expect_error "row without flows" "missing field \"flows\""
    (mk ~flow:{|[{"discipline": "sfq", "ns_per_packet": 1.0, "ns_p50": 1.0, "ns_p99": 1.2}]|} ());
  expect_error "non-integer flows" "flows must be a positive integer"
    (mk
       ~flow:{|[{"discipline": "sfq", "flows": 1.5, "ns_per_packet": 1.0, "ns_p50": 1.0, "ns_p99": 1.2}]|}
       ());
  expect_error "row without p99" "missing field \"ns_p99\""
    (mk ~flow:{|[{"discipline": "sfq", "flows": 1, "ns_per_packet": 1.0, "ns_p50": 1.0}]|} ());
  expect_error "row without depth" "missing field \"depth\""
    (mk ~depth:flow_frag ());
  expect_error "zero depth" "depth must be a positive integer"
    (mk
       ~depth:{|[{"discipline": "sfq", "flows": 1, "depth": 0, "ns_per_packet": 1.0, "ns_p50": 1.0, "ns_p99": 1.2}]|}
       ())

let test_rejects_bad_overhead () =
  expect_error "overhead budget breach" "breaches the 5% budget"
    (mk
       ~overhead:
         {|[{"mode": "untraced", "flows": 512, "depth": 64, "ns_per_packet": 300.0, "ns_p50": 300.0, "ns_p99": 310.0, "overhead_pct": null},
            {"mode": "disabled", "flows": 512, "depth": 64, "ns_per_packet": 330.0, "ns_p50": 330.0, "ns_p99": 340.0, "overhead_pct": 10.0},
            {"mode": "ring", "flows": 512, "depth": 64, "ns_per_packet": 330.0, "ns_p50": 330.0, "ns_p99": 340.0, "overhead_pct": 10.0},
            {"mode": "jsonl", "flows": 512, "depth": 64, "ns_per_packet": 900.0, "ns_p50": 900.0, "ns_p99": 950.0, "overhead_pct": 200.0}]|}
       ());
  expect_error "missing disabled mode" "missing mode \"disabled\""
    (mk
       ~overhead:
         {|[{"mode": "untraced", "flows": 512, "depth": 64, "ns_per_packet": 300.0, "ns_p50": 300.0, "ns_p99": 310.0, "overhead_pct": null},
            {"mode": "ring", "flows": 512, "depth": 64, "ns_per_packet": 330.0, "ns_p50": 330.0, "ns_p99": 340.0, "overhead_pct": 10.0},
            {"mode": "jsonl", "flows": 512, "depth": 64, "ns_per_packet": 900.0, "ns_p50": 900.0, "ns_p99": 950.0, "overhead_pct": 200.0}]|}
       ());
  expect_error "unknown mode" "unknown mode"
    (mk
       ~overhead:
         {|[{"mode": "sometimes", "flows": 512, "depth": 64, "ns_per_packet": 300.0, "ns_p50": 300.0, "ns_p99": 310.0, "overhead_pct": null}]|}
       ());
  expect_error "untraced with a pct" "untraced overhead_pct must be null"
    (mk
       ~overhead:
         {|[{"mode": "untraced", "flows": 512, "depth": 64, "ns_per_packet": 300.0, "ns_p50": 300.0, "ns_p99": 310.0, "overhead_pct": 0.0},
            {"mode": "disabled", "flows": 512, "depth": 64, "ns_per_packet": 303.0, "ns_p50": 303.0, "ns_p99": 311.0, "overhead_pct": 1.0},
            {"mode": "ring", "flows": 512, "depth": 64, "ns_per_packet": 330.0, "ns_p50": 330.0, "ns_p99": 340.0, "overhead_pct": 10.0},
            {"mode": "jsonl", "flows": 512, "depth": 64, "ns_per_packet": 900.0, "ns_p50": 900.0, "ns_p99": 950.0, "overhead_pct": 200.0}]|}
       ());
  expect_error "empty overhead" "tracing_overhead is empty" (mk ~overhead:"[]" ())

let test_rejects_bad_parallel () =
  expect_error "missing parallel" "missing field \"parallel\""
    (Printf.sprintf
       {|{"schema": "sfq-bench-sched/7", "meta": %s, "flow_scaling": %s, "depth_scaling": %s, "fastpath": %s, "pifo": %s, "tracing_overhead": %s}|}
       meta_frag flow_frag depth_frag fastpath_frag pifo_frag overhead_frag);
  expect_error "empty parallel" "parallel is empty" (mk ~parallel:"[]" ());
  (* the determinism witness: a file recording a parallel sweep that
     diverged from the serial reference is itself invalid *)
  expect_error "diverged parallel run" "identical is false"
    (mk
       ~parallel:
         {|[{"series": "oracle-sweep", "cells": 10, "domains": 2, "serial_s": 2.0, "parallel_s": 1.9, "speedup": 1.05, "identical": false}]|}
       ());
  expect_error "zero serial_s" "serial_s must be positive"
    (mk
       ~parallel:
         {|[{"series": "oracle-sweep", "cells": 10, "domains": 2, "serial_s": 0.0, "parallel_s": 1.9, "speedup": 1.05, "identical": true}]|}
       ());
  expect_error "fractional domains" "domains must be a positive integer"
    (mk
       ~parallel:
         {|[{"series": "oracle-sweep", "cells": 10, "domains": 1.5, "serial_s": 2.0, "parallel_s": 1.9, "speedup": 1.05, "identical": true}]|}
       ())

(* A row-swap helper for the fastpath gates: replace one discipline's
   row inside the otherwise-valid fragment. *)
let fastpath_with row disc =
  let keep =
    [
      ( "sfq",
        {|{"discipline": "sfq", "flows": 512, "ns_per_packet": 210.0, "ns_p50": 210.0, "ns_p99": 220.0, "allocations_per_packet": 14.0}|}
      );
      ( "sfq-fast",
        {|{"discipline": "sfq-fast", "flows": 512, "ns_per_packet": 100.0, "ns_p50": 100.0, "ns_p99": 110.0, "allocations_per_packet": 0.000}|}
      );
      ( "scfq",
        {|{"discipline": "scfq", "flows": 512, "ns_per_packet": 190.0, "ns_p50": 190.0, "ns_p99": 200.0, "allocations_per_packet": 12.0}|}
      );
      ( "scfq-fast",
        {|{"discipline": "scfq-fast", "flows": 512, "ns_per_packet": 95.0, "ns_p50": 95.0, "ns_p99": 105.0, "allocations_per_packet": 0.000}|}
      );
      ( "virtual-clock",
        {|{"discipline": "virtual-clock", "flows": 512, "ns_per_packet": 180.0, "ns_p50": 180.0, "ns_p99": 190.0, "allocations_per_packet": 12.0}|}
      );
      ( "vc-fast",
        {|{"discipline": "vc-fast", "flows": 512, "ns_per_packet": 90.0, "ns_p50": 90.0, "ns_p99": 100.0, "allocations_per_packet": 0.000}|}
      );
      ( "sp-pifo",
        {|{"discipline": "sp-pifo", "flows": 512, "ns_per_packet": 80.0, "ns_p50": 80.0, "ns_p99": 90.0, "allocations_per_packet": 0.000, "measured_unfairness": 2.5, "fairness_bound": 4.0, "unfairness_excess": -1.5, "pairs_checked": 28}|}
      );
    ]
  in
  let rows =
    List.filter_map
      (fun (d, default) ->
        if d = disc then match row with Some r -> Some r | None -> None
        else Some default)
      keep
  in
  "[" ^ String.concat ",\n" rows ^ "]"

let test_rejects_bad_fastpath () =
  expect_error "empty fastpath" "fastpath is empty" (mk ~fastpath:"[]" ());
  (* the zero-allocation contract: any nonzero sfq-fast column fails *)
  expect_error "allocating sfq-fast" "zero-allocation contract"
    (mk
       ~fastpath:
         (fastpath_with
            (Some
               {|{"discipline": "sfq-fast", "flows": 512, "ns_per_packet": 100.0, "ns_p50": 100.0, "ns_p99": 110.0, "allocations_per_packet": 2.001}|})
            "sfq-fast")
       ());
  (* the fast path must actually be fast at the largest flow count *)
  expect_error "slow sfq-fast" "does not beat sfq"
    (mk
       ~fastpath:
         (fastpath_with
            (Some
               {|{"discipline": "sfq-fast", "flows": 512, "ns_per_packet": 210.0, "ns_p50": 210.0, "ns_p99": 220.0, "allocations_per_packet": 0.000}|})
            "sfq-fast")
       ());
  (* sp-pifo without its fairness budget is an unpriced approximation *)
  expect_error "sp-pifo without budget" "measured_unfairness"
    (mk
       ~fastpath:
         (fastpath_with
            (Some
               {|{"discipline": "sp-pifo", "flows": 512, "ns_per_packet": 80.0, "ns_p50": 80.0, "ns_p99": 90.0, "allocations_per_packet": 0.000}|})
            "sp-pifo")
       ());
  expect_error "missing vc-fast row" "missing discipline \"vc-fast\""
    (mk ~fastpath:(fastpath_with None "vc-fast") ());
  expect_error "negative allocations" "non-negative"
    (mk
       ~fastpath:
         (fastpath_with
            (Some
               {|{"discipline": "scfq-fast", "flows": 512, "ns_per_packet": 95.0, "ns_p50": 95.0, "ns_p99": 105.0, "allocations_per_packet": -0.5}|})
            "scfq-fast")
       ())

let test_rejects_bad_pifo () =
  expect_error "missing pifo series" "missing field \"pifo\""
    (Printf.sprintf
       {|{"schema": "sfq-bench-sched/7", "meta": %s, "flow_scaling": %s, "depth_scaling": %s, "fastpath": %s, "tracing_overhead": %s, "parallel": %s}|}
       meta_frag flow_frag depth_frag fastpath_frag overhead_frag parallel_frag);
  expect_error "empty pifo" "pifo is empty" (mk ~pifo:"[]" ());
  (* rank programs may pay a bounded dispatch premium, never an allocation *)
  expect_error "allocating pifo-sfq" "zero-allocation contract"
    (mk
       ~pifo:
         {|[{"discipline": "pifo-sfq", "flows": 512, "ns_per_packet": 110.0, "ns_p50": 110.0, "ns_p99": 120.0, "allocations_per_packet": 2.0},
            {"discipline": "pifo-scfq", "flows": 512, "ns_per_packet": 105.0, "ns_p50": 105.0, "ns_p99": 115.0, "allocations_per_packet": 0.000},
            {"discipline": "pifo-vc", "flows": 512, "ns_per_packet": 100.0, "ns_p50": 100.0, "ns_p99": 110.0, "allocations_per_packet": 0.000}]|}
       ());
  (* fastpath_frag's sfq-fast sits at 100 ns: 116 ns breaches the 15% budget *)
  expect_error "slow pifo-sfq" "over budget"
    (mk
       ~pifo:
         {|[{"discipline": "pifo-sfq", "flows": 512, "ns_per_packet": 116.0, "ns_p50": 116.0, "ns_p99": 120.0, "allocations_per_packet": 0.000},
            {"discipline": "pifo-scfq", "flows": 512, "ns_per_packet": 105.0, "ns_p50": 105.0, "ns_p99": 115.0, "allocations_per_packet": 0.000},
            {"discipline": "pifo-vc", "flows": 512, "ns_per_packet": 100.0, "ns_p50": 100.0, "ns_p99": 110.0, "allocations_per_packet": 0.000}]|}
       ());
  expect_error "missing pifo-vc row" "missing discipline \"pifo-vc\""
    (mk
       ~pifo:
         {|[{"discipline": "pifo-sfq", "flows": 512, "ns_per_packet": 110.0, "ns_p50": 110.0, "ns_p99": 120.0, "allocations_per_packet": 0.000},
            {"discipline": "pifo-scfq", "flows": 512, "ns_per_packet": 105.0, "ns_p50": 105.0, "ns_p99": 115.0, "allocations_per_packet": 0.000}]|}
       ());
  (* the gate has no reference without an sfq-fast row at the pifo flow count *)
  expect_error "no sfq-fast reference" "no sfq-fast reference row"
    (mk
       ~pifo:
         {|[{"discipline": "pifo-sfq", "flows": 1024, "ns_per_packet": 110.0, "ns_p50": 110.0, "ns_p99": 120.0, "allocations_per_packet": 0.000},
            {"discipline": "pifo-scfq", "flows": 1024, "ns_per_packet": 105.0, "ns_p50": 105.0, "ns_p99": 115.0, "allocations_per_packet": 0.000},
            {"discipline": "pifo-vc", "flows": 1024, "ns_per_packet": 100.0, "ns_p50": 100.0, "ns_p99": 110.0, "allocations_per_packet": 0.000}]|}
       ())

let test_rejects_bad_netsim () =
  expect_error "missing netsim series" "missing field \"netsim\""
    (Printf.sprintf
       {|{"schema": "sfq-bench-sched/7", "meta": %s, "flow_scaling": %s, "depth_scaling": %s, "fastpath": %s, "pifo": %s, "tracing_overhead": %s, "parallel": %s}|}
       meta_frag flow_frag depth_frag fastpath_frag pifo_frag overhead_frag
       parallel_frag);
  expect_error "empty netsim" "netsim is empty" (mk ~netsim:"[]" ());
  (* a vanished discipline row would hide a scale regression *)
  expect_error "missing pifo-sfq row" "missing discipline \"pifo-sfq\""
    (mk
       ~netsim:
         {|[{"discipline": "sfq", "flows": 100000, "hops": 2, "packets_per_sec": 350000.0, "peak_rss_kb": 110000, "rss_bound_kb": 1048576},
            {"discipline": "sfq-fast", "flows": 100000, "hops": 2, "packets_per_sec": 400000.0, "peak_rss_kb": 105000, "rss_bound_kb": 1048576}]|}
       ());
  (* the window-bounded-memory gate: peak RSS over the recorded bound *)
  expect_error "rss over bound" "exceeds the 1048576 kB bound"
    (mk
       ~netsim:
         {|[{"discipline": "sfq", "flows": 100000, "hops": 2, "packets_per_sec": 350000.0, "peak_rss_kb": 2097152, "rss_bound_kb": 1048576},
            {"discipline": "sfq-fast", "flows": 100000, "hops": 2, "packets_per_sec": 400000.0, "peak_rss_kb": 105000, "rss_bound_kb": 1048576},
            {"discipline": "pifo-sfq", "flows": 100000, "hops": 2, "packets_per_sec": 380000.0, "peak_rss_kb": 120000, "rss_bound_kb": 1048576}]|}
       ());
  expect_error "zero pps" "packets_per_sec must be positive"
    (mk
       ~netsim:
         {|[{"discipline": "sfq", "flows": 100000, "hops": 2, "packets_per_sec": 0.0, "peak_rss_kb": 110000, "rss_bound_kb": 1048576},
            {"discipline": "sfq-fast", "flows": 100000, "hops": 2, "packets_per_sec": 400000.0, "peak_rss_kb": 105000, "rss_bound_kb": 1048576},
            {"discipline": "pifo-sfq", "flows": 100000, "hops": 2, "packets_per_sec": 380000.0, "peak_rss_kb": 120000, "rss_bound_kb": 1048576}]|}
       ());
  expect_error "absent peak_rss_kb" "missing field \"peak_rss_kb\""
    (mk
       ~netsim:
         {|[{"discipline": "sfq", "flows": 100000, "hops": 2, "packets_per_sec": 350000.0, "rss_bound_kb": 1048576},
            {"discipline": "sfq-fast", "flows": 100000, "hops": 2, "packets_per_sec": 400000.0, "peak_rss_kb": 105000, "rss_bound_kb": 1048576},
            {"discipline": "pifo-sfq", "flows": 100000, "hops": 2, "packets_per_sec": 380000.0, "peak_rss_kb": 120000, "rss_bound_kb": 1048576}]|}
       ())

let test_rejects_bad_replay () =
  expect_error "missing replay series" "missing field \"replay\""
    (Printf.sprintf
       {|{"schema": "sfq-bench-sched/7", "meta": %s, "flow_scaling": %s, "depth_scaling": %s, "fastpath": %s, "pifo": %s, "tracing_overhead": %s, "parallel": %s, "netsim": %s}|}
       meta_frag flow_frag depth_frag fastpath_frag pifo_frag overhead_frag
       parallel_frag netsim_frag);
  expect_error "empty replay" "replay is empty" (mk ~replay:"[]" ());
  (* a tier whose rows stop being all-ok is a replay regression *)
  expect_error "net regression" "replay regression"
    (mk
       ~replay:
         {|[{"tier": "single", "cells": 32, "ok": 32},
            {"tier": "net", "cells": 20, "ok": 19},
            {"tier": "control", "cells": 4, "ok": 1},
            {"tier": "kills", "cells": 5, "ok": 5}]|}
       ());
  (* a surviving mutant is the same failure shape *)
  expect_error "surviving mutant" "replay regression"
    (mk
       ~replay:
         {|[{"tier": "single", "cells": 32, "ok": 32},
            {"tier": "net", "cells": 20, "ok": 20},
            {"tier": "control", "cells": 4, "ok": 1},
            {"tier": "kills", "cells": 5, "ok": 4}]|}
       ());
  (* SFQ replaying everything means the control proves nothing *)
  expect_error "vacuous control" "vacuous"
    (mk
       ~replay:
         {|[{"tier": "single", "cells": 32, "ok": 32},
            {"tier": "net", "cells": 20, "ok": 20},
            {"tier": "control", "cells": 4, "ok": 0},
            {"tier": "kills", "cells": 5, "ok": 5}]|}
       ());
  expect_error "missing control tier" "missing tier \"control\""
    (mk
       ~replay:
         {|[{"tier": "single", "cells": 32, "ok": 32},
            {"tier": "net", "cells": 20, "ok": 20},
            {"tier": "kills", "cells": 5, "ok": 5}]|}
       ());
  expect_error "unknown tier" "unknown tier"
    (mk ~replay:{|[{"tier": "mystery", "cells": 1, "ok": 1}]|} ());
  expect_error "ok over cells" "ok exceeds cells"
    (mk
       ~replay:
         {|[{"tier": "single", "cells": 32, "ok": 33},
            {"tier": "net", "cells": 20, "ok": 20},
            {"tier": "control", "cells": 4, "ok": 1},
            {"tier": "kills", "cells": 5, "ok": 5}]|}
       ());
  expect_error "fractional ok" "non-negative integer"
    (mk
       ~replay:
         {|[{"tier": "single", "cells": 32, "ok": 31.5},
            {"tier": "net", "cells": 20, "ok": 20},
            {"tier": "control", "cells": 4, "ok": 1},
            {"tier": "kills", "cells": 5, "ok": 5}]|}
       ())

let test_rejects_empty_series () =
  expect_error "empty flow_scaling" "flow_scaling is empty" (mk ~flow:"[]" ())

let test_rejects_trailing_garbage () =
  expect_error "trailing" "trailing garbage" (valid_doc ^ " x")

let test_parser_primitives () =
  let open Bench_json in
  check_bool "escapes" true
    (parse {|"a\"b\\c\nd"|} = Str "a\"b\\c\nd");
  check_bool "nested" true
    (parse {|{"a": [1, true, null, "s"]}|}
    = Obj [ ("a", List [ Num 1.0; Bool true; Null; Str "s" ]) ]);
  check_bool "exponent" true (parse "3.2e2" = Num 320.0);
  check_bool "field" true (field "a" (Obj [ ("a", Null) ]) = Null);
  (match field "b" (Obj [ ("a", Null) ]) with
  | exception Bad _ -> ()
  | _ -> Alcotest.fail "missing field accepted")

let () =
  Alcotest.run "bench_json"
    [
      ( "accept",
        [
          Alcotest.test_case "valid sample" `Quick test_accepts_valid_sample;
          Alcotest.test_case "checked-in BENCH_sched.json" `Quick
            test_accepts_checked_in_file;
          Alcotest.test_case "parser primitives" `Quick test_parser_primitives;
        ] );
      ( "reject",
        [
          Alcotest.test_case "every truncation" `Quick test_rejects_truncated;
          Alcotest.test_case "nan / inf / negative" `Quick test_rejects_nan;
          Alcotest.test_case "missing fields" `Quick test_rejects_missing_fields;
          Alcotest.test_case "bad tracing overhead" `Quick test_rejects_bad_overhead;
          Alcotest.test_case "bad fastpath series" `Quick test_rejects_bad_fastpath;
          Alcotest.test_case "bad pifo series" `Quick test_rejects_bad_pifo;
          Alcotest.test_case "bad parallel series" `Quick test_rejects_bad_parallel;
          Alcotest.test_case "bad netsim series" `Quick test_rejects_bad_netsim;
          Alcotest.test_case "bad replay series" `Quick test_rejects_bad_replay;
          Alcotest.test_case "empty series" `Quick test_rejects_empty_series;
          Alcotest.test_case "trailing garbage" `Quick test_rejects_trailing_garbage;
        ] );
    ]
