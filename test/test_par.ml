(* The parallel≡serial determinism suite.

   The sfq.par contract is that domain count is not an observable: the
   full oracle acceptance sweep, a bench-style row replay and the
   mutation self-check must produce byte-identical digests at 1, 2, 4
   and 8 domains (plus SFQ_DOMAINS when the CI matrix sets it). Plus
   directed unit tests for the pool executor itself and for the
   domain-safety of the obs layer (per-domain tracers and metrics
   registries never interleave). *)

open Sfq_base
open Sfq_oracle
open Sfq_par

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* 1 is the serial reference; the rest must reproduce it bit for bit.
   SFQ_DOMAINS lets CI exercise an extra count on a different core
   budget than developer machines. *)
let domain_counts =
  let base = [ 1; 2; 4; 8 ] in
  match Sys.getenv_opt "SFQ_DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 && not (List.mem n base) -> base @ [ n ]
    | _ -> base)
  | None -> base

let assert_identical ~what digests =
  match digests with
  | [] -> ()
  | (_, reference) :: rest ->
    List.iter
      (fun (domains, d) ->
        if not (String.equal d reference) then
          Alcotest.failf "%s: digest at %d domains differs from serial run" what
            domains)
      rest

(* ------------------------------------------------------------------ *)
(* Oracle sweep determinism                                             *)

let test_oracle_sweep_deterministic () =
  let cells = Suite.all_cells () in
  let digests =
    List.map
      (fun domains -> (domains, Run.sweep_digest cells (Run.sweep ~domains cells)))
      domain_counts
  in
  assert_identical ~what:"oracle sweep" digests;
  (* the digest is not vacuous: it covers every cell and the serial
     sweep of this pool is known clean *)
  let _, reference = List.hd digests in
  check_int "one line per cell"
    (List.length cells)
    (List.length (String.split_on_char '\n' reference) - 1)

(* ------------------------------------------------------------------ *)
(* Net-sweep determinism: whole-network scenario cells (E27) — every
   cell is a closed multi-hop simulation with its own event queue,
   registry and oracle, so this exercises a much deeper state machine
   per task than the oracle cells above. The grid's churn-heavy star
   (finite Drop_front buffers, id recycling under overload) rides along
   in [default_cells], making drop ordering and registry reuse part of
   the digest. *)

module Net_sweep = Sfq_experiments.Net_sweep

let test_net_sweep_deterministic () =
  let cells = Net_sweep.default_cells () in
  let digests =
    List.map
      (fun domains ->
        ( domains,
          Net_sweep.sweep_digest cells (Net_sweep.sweep ~domains cells) ))
      domain_counts
  in
  assert_identical ~what:"net sweep" digests;
  let _, reference = List.hd digests in
  check_int "one line per net cell"
    (List.length cells)
    (List.length (String.split_on_char '\n' reference) - 1);
  check_bool "churn-heavy star cell is in the digested grid" true
    (List.exists
       (fun (c : Net_sweep.scenario) -> c.Net_sweep.churn)
       cells)

(* ------------------------------------------------------------------ *)
(* Bench-row determinism: the E14 steady-state loop, replayed per
   discipline in parallel, digesting the departure order and a CSV
   rendering of the per-row summaries. Timings are not digestable;
   what must be invariant is everything the schedulers *did*. *)

type bench_row = { row_label : string; departures : string; csv_cells : string list }

let bench_row_specs (w : Workload.t) =
  let cap = w.Workload.capacity in
  [
    ("sfq", Sfq_experiments.Disc.Sfq);
    ("scfq", Sfq_experiments.Disc.Scfq);
    ("vc", Sfq_experiments.Disc.Virtual_clock);
    ("drr", Sfq_experiments.Disc.Drr { quantum = 1000.0 });
    ("wfq-real", Sfq_experiments.Disc.Wfq_real { capacity = cap });
  ]

let replay_bench_row ~nflows ~ops (label, spec) =
  (* domain-local: scheduler and digest buffer are built in the task *)
  let sched = Sfq_experiments.Disc.make spec (Weights.uniform 1000.0) in
  let b = Buffer.create (ops * 8) in
  let seqs = Array.make nflows 0 in
  let now = ref 0.0 in
  let departed = ref 0 in
  for i = 0 to ops - 1 do
    let f = i mod nflows in
    seqs.(f) <- seqs.(f) + 1;
    now := !now +. 1e-4;
    sched.Sched.enqueue ~now:!now
      (Packet.make ~flow:f ~seq:seqs.(f) ~len:1000 ~born:!now ());
    match sched.Sched.dequeue ~now:!now with
    | Some p ->
      incr departed;
      Buffer.add_string b (Printf.sprintf "%d.%d;" p.Packet.flow p.Packet.seq)
    | None -> Buffer.add_char b '-'
  done;
  {
    row_label = label;
    departures = Digest.to_hex (Digest.string (Buffer.contents b));
    csv_cells = [ label; string_of_int ops; string_of_int !departed ];
  }

let test_bench_row_deterministic () =
  let w = List.hd Suite.theorem_pool in
  let specs = Array.of_list (bench_row_specs w) in
  let digest_at domains =
    let rows =
      Pool.run ~domains ~f:(fun _ spec -> replay_bench_row ~nflows:32 ~ops:4000 spec) specs
    in
    let order =
      String.concat "\n"
        (Array.to_list (Array.map (fun r -> r.row_label ^ " " ^ r.departures) rows))
    in
    let csv =
      Sfq_analysis.Csv_out.to_string
        ~header:[ "discipline"; "ops"; "departed" ]
        ~rows:(Array.to_list (Array.map (fun r -> r.csv_cells) rows))
    in
    order ^ "\n" ^ csv
  in
  assert_identical ~what:"bench row"
    (List.map (fun d -> (d, digest_at d)) domain_counts)

(* ------------------------------------------------------------------ *)
(* Mutation self-check through the parallel sweep: a merge step that
   dropped or reordered monitor verdicts would silently un-catch a
   mutant at some domain count. *)

let test_mutants_caught_at_every_domain_count () =
  let tagged = Suite.mutant_cells () in
  let cells = List.map snd tagged in
  List.iter
    (fun domains ->
      let outcomes = Run.sweep ~domains cells in
      List.iteri
        (fun i (mode, _) ->
          let expected = Mutant.expected_monitor mode in
          let names =
            List.map
              (fun (v : Monitor.violation) -> v.Monitor.monitor)
              outcomes.(i).Run.violations
          in
          if not (List.mem expected names) then
            Alcotest.failf "mutant %s at %d domains: expected %s; tripped [%s]"
              (Mutant.name mode) domains expected (String.concat ", " names))
        tagged)
    domain_counts

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                      *)

exception Boom of int

let test_pool_empty () =
  let r = Pool.run ~domains:4 ~f:(fun _ x -> x + 1) [||] in
  check_int "empty task list" 0 (Array.length r)

let test_pool_more_domains_than_tasks () =
  let r = Pool.run ~domains:8 ~f:(fun i x -> (10 * x) + i) [| 1; 2; 3 |] in
  check_bool "ordered results" true (r = [| 10; 21; 32 |])

let test_pool_chunked_ordering () =
  let n = 103 in
  let tasks = Array.init n (fun i -> i) in
  let expect = Array.map (fun x -> x * x) tasks in
  List.iter
    (fun chunk ->
      let r = Pool.run ~chunk ~domains:4 ~f:(fun _ x -> x * x) tasks in
      check_bool (Printf.sprintf "chunk=%d" chunk) true (r = expect))
    [ 1; 7; 64; 1000 ]

let test_pool_exception_propagation () =
  (* every failing index must surface as the smallest one, regardless
     of which domain hit it first *)
  match
    Pool.run ~domains:4
      ~f:(fun i x -> if x mod 3 = 0 then raise (Boom i) else x)
      (Array.init 50 (fun i -> i + 1))
  with
  | _ -> Alcotest.fail "expected Boom to propagate"
  | exception Boom i -> check_int "smallest failing index" 2 i

let test_pool_nested_submit_rejected () =
  match
    Pool.run ~domains:2
      ~f:(fun _ () -> Pool.run ~domains:2 ~f:(fun _ x -> x) [| 1 |])
      [| (); () |]
  with
  | _ -> Alcotest.fail "nested submit must be rejected"
  | exception Invalid_argument _ -> ()

let test_pool_shutdown_rejects_map () =
  let p = Pool.create ~domains:2 in
  let r = Pool.map p ~f:(fun _ x -> x * 2) [| 21 |] in
  check_int "pool works before shutdown" 42 r.(0);
  Pool.shutdown p;
  Pool.shutdown p;
  (* idempotent *)
  match Pool.map p ~f:(fun _ x -> x) [| 1 |] with
  | _ -> Alcotest.fail "map after shutdown must be rejected"
  | exception Invalid_argument _ -> ()

let test_pool_reuse_across_sweeps () =
  let p = Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let a = Pool.map p ~f:(fun _ x -> x + 1) (Array.init 20 (fun i -> i)) in
      let b = Pool.map p ~f:(fun _ x -> x * 2) (Array.init 5 (fun i -> i)) in
      check_bool "first sweep" true (a = Array.init 20 (fun i -> i + 1));
      check_bool "second sweep" true (b = [| 0; 2; 4; 6; 8 |]))

(* ------------------------------------------------------------------ *)
(* Seed derivation                                                      *)

let test_seed_derivation () =
  check_int "pure" (Seed.derive ~root:42 ~index:7) (Seed.derive ~root:42 ~index:7);
  check_bool "index matters" true
    (Seed.derive ~root:42 ~index:0 <> Seed.derive ~root:42 ~index:1);
  check_bool "root matters" true
    (Seed.derive ~root:1 ~index:3 <> Seed.derive ~root:2 ~index:3);
  check_bool "non-negative" true
    (List.for_all
       (fun i -> Seed.derive ~root:(-5) ~index:i >= 0)
       [ 0; 1; 2; 1000 ]);
  (* derived seeds must give distinct Rng streams *)
  let stream i =
    let rng = Sfq_util.Rng.create (Seed.derive ~root:0xfeed ~index:i) in
    List.init 4 (fun _ -> Sfq_util.Rng.bits64 rng)
  in
  check_bool "distinct streams" true (stream 0 <> stream 1);
  match Seed.derive ~root:0 ~index:(-1) with
  | _ -> Alcotest.fail "negative index must be rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Obs-layer domain safety: per-domain tracers and registries must not
   interleave. Tracers are domain-local by construction (one instance
   per task); this test is the executable form of that audit claim —
   two domains recording concurrently, each ring ending up with exactly
   its own, in-order, uncorrupted records. *)

let test_tracers_do_not_interleave () =
  let n_events = 20_000 in
  let work flow_base =
    let tracer = Sfq_obs.Tracer.create ~capacity:n_events () in
    for i = 0 to n_events - 1 do
      Sfq_obs.Tracer.record_tag tracer ~now:(float_of_int i) ~flow:flow_base
        ~seq:(i + 1) ~len:1000 ~stag:(float_of_int (2 * i))
        ~ftag:(float_of_int ((2 * i) + 1))
        ~vtime:(float_of_int i)
    done;
    tracer
  in
  let d1 = Domain.spawn (fun () -> work 1) in
  let d2 = Domain.spawn (fun () -> work 2) in
  let t1 = Domain.join d1 and t2 = Domain.join d2 in
  List.iter
    (fun (flow, t) ->
      check_int "all events retained" n_events (Sfq_obs.Tracer.length t);
      check_int "none dropped" 0 (Sfq_obs.Tracer.dropped t);
      let i = ref 0 in
      Sfq_obs.Tracer.iter t ~f:(fun (e : Sfq_obs.Event.t) ->
          if
            e.flow <> flow
            || e.seq <> !i + 1
            || e.stag <> float_of_int (2 * !i)
            || e.ftag <> float_of_int ((2 * !i) + 1)
          then
            Alcotest.failf "corrupt record %d in flow-%d ring: flow=%d seq=%d" !i
              flow e.flow e.seq;
          incr i))
    [ (1, t1); (2, t2) ]

let test_metrics_merge_at_barrier () =
  (* the per-domain-instances pattern: each task owns a registry,
     merged (here: summed) after the barrier; the merged totals are
     independent of domain count *)
  let counts = Array.init 16 (fun i -> 100 + i) in
  let totals domains =
    let snapshots =
      Pool.run ~domains
        ~f:(fun _ n ->
          let m = Sfq_obs.Metrics.create () in
          let c = Sfq_obs.Metrics.counter m "task.packets" in
          for _ = 1 to n do
            Sfq_obs.Metrics.incr c
          done;
          Sfq_obs.Metrics.counter_value c)
        counts
    in
    Array.fold_left ( +. ) 0.0 snapshots
  in
  let expected = float_of_int (Array.fold_left ( + ) 0 counts) in
  List.iter
    (fun domains ->
      Alcotest.(check (float 0.0)) (Printf.sprintf "%d domains" domains) expected
        (totals domains))
    domain_counts

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "par"
    [
      ( "determinism",
        [
          Alcotest.test_case "oracle sweep digests are domain-count invariant" `Quick
            test_oracle_sweep_deterministic;
          Alcotest.test_case "net sweep digests are domain-count invariant" `Quick
            test_net_sweep_deterministic;
          Alcotest.test_case "bench row replay + CSV are domain-count invariant"
            `Quick test_bench_row_deterministic;
          Alcotest.test_case "mutants caught at 1/2/4/8 domains" `Quick
            test_mutants_caught_at_every_domain_count;
        ] );
      ( "pool",
        [
          Alcotest.test_case "empty task list" `Quick test_pool_empty;
          Alcotest.test_case "more domains than tasks" `Quick
            test_pool_more_domains_than_tasks;
          Alcotest.test_case "chunked ordering" `Quick test_pool_chunked_ordering;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagation;
          Alcotest.test_case "nested submit rejected" `Quick
            test_pool_nested_submit_rejected;
          Alcotest.test_case "shutdown rejects map" `Quick
            test_pool_shutdown_rejects_map;
          Alcotest.test_case "pool reuse across sweeps" `Quick
            test_pool_reuse_across_sweeps;
        ] );
      ("seed", [ Alcotest.test_case "derivation" `Quick test_seed_derivation ]);
      ( "obs",
        [
          Alcotest.test_case "two domains tracing never interleave" `Quick
            test_tracers_do_not_interleave;
          Alcotest.test_case "metrics merge at the barrier" `Quick
            test_metrics_merge_at_barrier;
        ] );
    ]
