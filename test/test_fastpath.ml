(* The fixed-point fast path: Tag codec unit tests, Iheap model
   properties mirroring the Fheap trio, a cross-heap tie-order check
   (int-tag ties must resolve exactly like float-tag ties), dyadic
   differential equivalence of every fast scheduler against its float
   original, digest equality across domain counts, the zero-allocation
   budget, the saturation rail, and SP-PIFO's adaptation rule. *)

open Sfq_base
open Sfq_fastpath
module Fheap = Sfq_util.Fheap
module Iheap = Sfq_util.Iheap
module Rng = Sfq_util.Rng
module Tag_queue = Sfq_sched.Tag_queue
module Sfq = Sfq_core.Sfq
module Scfq = Sfq_sched.Scfq
module Vc = Sfq_sched.Virtual_clock
module O = Sfq_oracle

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-12))
let check_string = Alcotest.(check string)

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

(* ------------------------------------------------------------------ *)
(* Tag codec                                                            *)

let c20 = Tag.make ()

let test_tag_codec_basics () =
  check_int "default frac_bits" 20 (Tag.frac_bits c20);
  check_float "scale" 1048576.0 (Tag.scale c20);
  Alcotest.check_raises "frac_bits 53 rejected"
    (Invalid_argument "Tag.make: frac_bits must be in [0, 52]") (fun () ->
      ignore (Tag.make ~frac_bits:53 ()));
  Alcotest.check_raises "negative frac_bits rejected"
    (Invalid_argument "Tag.make: frac_bits must be in [0, 52]") (fun () ->
      ignore (Tag.make ~frac_bits:(-1) ()))

let test_tag_dyadic_roundtrip () =
  (* Dyadic rationals within 20 fractional bits encode exactly. *)
  List.iter
    (fun v -> check_float (Printf.sprintf "roundtrip %g" v) v Tag.(decode c20 (encode c20 v)))
    [ 0.0; 1.0; 0.5; 0.25; 3.125; 1024.0; 1e6 +. (1.0 /. 1048576.0) ];
  (* Non-dyadic values land within half a quantum. *)
  List.iter
    (fun v ->
      let err = Float.abs (Tag.(decode c20 (encode c20 v)) -. v) in
      check_bool
        (Printf.sprintf "%g within half a quantum (err %g)" v err)
        true
        (err <= 0.5 /. 1048576.0))
    [ 0.1; 1.0 /. 3.0; 123.456 ]

let test_tag_codec_clamps () =
  check_int "negative clamps to 0" 0 (Tag.encode c20 (-5.0));
  check_int "rail clamp" Tag.max_tag (Tag.encode c20 1e30);
  check_int "infinity clamp" Tag.max_tag (Tag.encode c20 infinity)

let test_tag_delta () =
  let sor = Tag.scale_over c20 ~rate:100.0 in
  check_int "exact delta" (1 lsl 20) (Tag.delta ~sor ~len:100);
  check_int "sub-quantum clamps to 1" 1
    (Tag.delta ~sor:(Tag.scale_over c20 ~rate:1e18) ~len:100);
  check_int "huge delta clamps to rail" Tag.max_tag
    (Tag.delta ~sor:(Tag.scale_over c20 ~rate:1e-10) ~len:1000);
  Alcotest.check_raises "non-positive rate rejected"
    (Invalid_argument "Tag.scale_over: rate must be positive") (fun () ->
      ignore (Tag.scale_over c20 ~rate:0.0))

let test_tag_saturation () =
  check_int "max_tag is half max_int" (max_int / 2) Tag.max_tag;
  check_int "sat_add saturates" Tag.max_tag (Tag.sat_add Tag.max_tag 1);
  check_int "sat_add below rail is exact" (Tag.max_tag - 2)
    (Tag.sat_add (Tag.max_tag - 5) 3);
  check_bool "rail is saturated" true (Tag.is_saturated Tag.max_tag);
  check_bool "below rail is not" false (Tag.is_saturated (Tag.max_tag - 1));
  check_float "no headroom at the rail" 0.0 (Tag.headroom c20 Tag.max_tag);
  check_float "full headroom at 0" (Tag.decode c20 Tag.max_tag) (Tag.headroom c20 0)

let test_tie_encode_directed () =
  check_int "zero maps to zero" 0 (Tag.tie_encode 0.0);
  check_int "antisymmetric" (-Tag.tie_encode 2.5) (Tag.tie_encode (-2.5));
  check_bool "sign order" true (Tag.tie_encode (-1.0) < Tag.tie_encode 1.0);
  Alcotest.check_raises "NaN rejected" (Invalid_argument "Tag.tie_encode: NaN tie")
    (fun () -> ignore (Tag.tie_encode Float.nan))

(* The saturation boundary of the tie codec: the extremes of the float
   line must saturate the int image in order, never wrap to the
   opposite sign. A wrap here would silently invert tie priority for
   the largest weights — exactly the kind of bug the mli promises
   away, so it gets its own directed test. *)
let test_tie_encode_saturation_boundary () =
  let inf = Tag.tie_encode Float.infinity in
  let max_f = Tag.tie_encode Float.max_float in
  check_bool "infinity image is positive (no wrap)" true (inf > 0);
  check_bool "infinity above max_float" true (inf > max_f);
  check_bool "max_float above any ordinary tie" true (max_f > Tag.tie_encode 1e30);
  check_int "neg_infinity is the exact negation" (-inf)
    (Tag.tie_encode Float.neg_infinity);
  check_bool "neg_infinity below -max_float" true
    (Tag.tie_encode Float.neg_infinity < Tag.tie_encode (-.Float.max_float));
  check_int "negative zero collapses onto zero" 0 (Tag.tie_encode (-0.0));
  check_bool "subnormals stay above zero" true (Tag.tie_encode Float.min_float > 0);
  (* headroom sanity: the whole image fits an OCaml int, so negating
     the rail (the antisymmetric branch) cannot overflow either *)
  check_bool "rail fits with room to negate" true (inf < max_int)

let prop_tie_encode_monotone =
  QCheck.Test.make ~name:"tag: tie_encode is monotone" ~count:1000
    QCheck.(pair (float_range (-1e9) 1e9) (float_range (-1e9) 1e9))
    (fun (a, b) ->
      if a <= b then Tag.tie_encode a <= Tag.tie_encode b
      else Tag.tie_encode a >= Tag.tie_encode b)

(* ------------------------------------------------------------------ *)
(* Iheap: the int sibling of Fheap, same model properties               *)

let iheap_drain h =
  let rec go acc =
    match Iheap.pop h with None -> List.rev acc | Some (_, v) -> go (v :: acc)
  in
  go []

let test_iheap_empty () =
  let h : int Iheap.t = Iheap.create () in
  check_int "length" 0 (Iheap.length h);
  check_bool "is_empty" true (Iheap.is_empty h);
  check_bool "pop" true (Iheap.pop h = None);
  check_bool "min" true (Iheap.min h = None);
  Alcotest.check_raises "min_key_exn" (Invalid_argument "Iheap.min_key_exn: empty heap")
    (fun () -> ignore (Iheap.min_key_exn h))

let test_iheap_basics () =
  let h = Iheap.create ~capacity:1 () in
  List.iteri (fun i k -> Iheap.add h ~key:k ~tie:0 ~uid:i k) [ 3; 1; 4; 2 ];
  check_int "min_key_exn" 1 (Iheap.min_key_exn h);
  check_int "min_elt_exn" 1 (Iheap.min_elt_exn h);
  check_bool "min" true (Iheap.min h = Some (1, 1));
  check_bool "min_elt" true (Iheap.min_elt h = Some 1);
  (* The non-allocating removal pair agrees with pop. *)
  Iheap.remove_root h;
  check_bool "pop after remove_root" true (Iheap.pop h = Some (2, 2));
  check_bool "pop_elt" true (Iheap.pop_elt h = Some 3);
  check_int "length" 1 (Iheap.length h);
  check_bool "capacity covers length" true (Iheap.capacity h >= Iheap.length h);
  Iheap.clear h;
  check_bool "cleared" true (Iheap.is_empty h)

let test_iheap_remove_matching () =
  let h = Iheap.create () in
  List.iteri (fun i v -> Iheap.add h ~key:5 ~tie:0 ~uid:i v) [ 10; 20; 10; 30 ];
  check_bool "oldest match" true
    (Iheap.remove_matching h ~pred:(fun v -> v = 10) = Some (5, 10));
  check_bool "newest match" true
    (Iheap.remove_matching ~newest:true h ~pred:(fun v -> v >= 10) = Some (5, 30));
  check_bool "no match" true (Iheap.remove_matching h ~pred:(fun v -> v = 99) = None);
  check_int "two left" 2 (Iheap.length h)

let iheap_entries_gen = QCheck.Gen.(list_size (0 -- 80) (pair (0 -- 5) (0 -- 3)))
let iheap_entries_print = QCheck.Print.(list (pair int int))

let prop_iheap_pop_order_matches_reference =
  (* Pop order is ascending (key, tie, uid) — the reference is a plain
     sort of the insertion triples, as in the Fheap property. *)
  QCheck.Test.make ~name:"iheap: drains in (key, tie, uid) order" ~count:300
    (QCheck.make iheap_entries_gen ~print:iheap_entries_print)
    (fun entries ->
      let h = Iheap.create ~capacity:1 () in
      List.iteri (fun uid (k, t) -> Iheap.add h ~key:k ~tie:t ~uid uid) entries;
      let reference =
        List.mapi (fun uid (k, t) -> (k, t, uid)) entries
        |> List.sort compare
        |> List.map (fun (_, _, uid) -> uid)
      in
      iheap_drain h = reference)

let prop_iheap_tie_uid_stability =
  (* With key and tie fully degenerate, uid alone must make the order
     total: pops come out in insertion (FIFO) order. *)
  QCheck.Test.make ~name:"iheap: equal keys and ties pop in uid order" ~count:300
    QCheck.(0 -- 60)
    (fun n ->
      let h = Iheap.create () in
      for uid = 0 to n - 1 do
        Iheap.add h ~key:7 ~tie:2 ~uid uid
      done;
      iheap_drain h = List.init n (fun i -> i))

let prop_iheap_interleaved =
  QCheck.Test.make ~name:"iheap: matches sorted-list model under interleaving"
    ~count:200
    QCheck.(list (pair bool (pair (0 -- 5) (0 -- 3))))
    (fun ops ->
      let h = Iheap.create () in
      let model = ref [] in
      let uid = ref 0 in
      List.for_all
        (fun (is_pop, (k, t)) ->
          if is_pop then begin
            let expected =
              match List.sort compare !model with
              | [] -> None
              | ((key, _, u) as min) :: _ ->
                model := List.filter (fun x -> x <> min) !model;
                Some (key, u)
            in
            Iheap.pop h = expected
          end
          else begin
            Iheap.add h ~key:k ~tie:t ~uid:!uid !uid;
            model := (k, t, !uid) :: !model;
            incr uid;
            true
          end)
        ops
      && Iheap.length h = List.length !model)

let prop_cross_heap_tie_agreement =
  (* Satellite check for the differential suite's premise: feed the
     same (key, tie) stream to Fheap as floats and to Iheap through
     the fixed-point codec / tie_encode, and the two heaps must drain
     identically — int-tag ties resolve exactly like float-tag ties,
     both falling through to the uid. Keys in small integers so the
     encoding is exact. *)
  QCheck.Test.make ~name:"fheap/iheap: identical drain order on encoded keys"
    ~count:300
    (QCheck.make iheap_entries_gen ~print:iheap_entries_print)
    (fun entries ->
      let fh = Fheap.create () and ih = Iheap.create () in
      List.iteri
        (fun uid (k, t) ->
          let kf = float_of_int k and tf = float_of_int t /. 4.0 in
          Fheap.add fh ~key:kf ~tie:tf ~uid uid;
          Iheap.add ih ~key:(Tag.encode c20 kf) ~tie:(Tag.tie_encode tf) ~uid uid)
        entries;
      let rec fdrain acc =
        match Fheap.pop fh with None -> List.rev acc | Some (_, v) -> fdrain (v :: acc)
      in
      fdrain [] = iheap_drain ih)

(* ------------------------------------------------------------------ *)
(* Differential equivalence: fast schedulers vs float originals         *)

(* Dyadic workload material: rates are 100·2^k and lengths multiples of
   100, so every len/rate is k/2^j — exact at 20 fractional bits — and
   clocks advance in quarter steps. On such inputs the fast schedulers
   promise packet-for-packet identity with the float originals. *)
let dyadic_rates = [| 100.0; 200.0; 400.0; 800.0; 1600.0; 3200.0 |]

type action =
  | Enq of Packet.t
  | Deq
  | Evict of Sched.victim * int
  | Close of int

let gen_scenario seed =
  let r = Rng.create seed in
  let nflows = 1 + Rng.int r 4 in
  let weights =
    List.init nflows (fun f -> (f, dyadic_rates.(Rng.int r (Array.length dyadic_rates))))
  in
  let seqs = Array.make nflows 0 in
  let now = ref 0.0 in
  let nops = 40 + Rng.int r 120 in
  (* explicit loop: clocks must be generated in ascending op order *)
  let ops = ref [] in
  for _ = 1 to nops do
    now := !now +. (0.25 *. float_of_int (Rng.int r 5));
    let t = !now in
    let a =
      let roll = Rng.int r 100 in
      if roll < 55 then begin
        let f = Rng.int r nflows in
        seqs.(f) <- seqs.(f) + 1;
        let len = 100 * (1 + Rng.int r 15) in
        let rate =
          if Rng.int r 4 = 0 then
            Some dyadic_rates.(Rng.int r (Array.length dyadic_rates))
          else None
        in
        Enq (Packet.make ?rate ~flow:f ~seq:seqs.(f) ~len ~born:t ())
      end
      else if roll < 85 then Deq
      else if roll < 93 then
        Evict ((if Rng.bool r then Sched.Oldest else Sched.Newest), Rng.int r nflows)
      else Close (Rng.int r nflows)
    in
    ops := (t, a) :: !ops
  done;
  (weights, List.rev !ops, !now)

let pkt_str = function
  | None -> "None"
  | Some p -> Printf.sprintf "flow %d seq %d len %d" p.Packet.flow p.Packet.seq p.Packet.len

let popt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some p, Some q -> p == q
  | _ -> false

(* Both schedulers see the same physical packets, so equivalence is
   physical equality of every dequeue/evict/close result. *)
let run_differential ~name mk_float mk_fast (weights, ops, final) =
  let w = Weights.of_list ~default:1.0 weights in
  let a = mk_float w in
  let b = mk_fast w in
  List.iteri
    (fun i (now, action) ->
      match action with
      | Enq p ->
        a.Sched.enqueue ~now p;
        b.Sched.enqueue ~now p
      | Deq ->
        let x = a.Sched.dequeue ~now in
        let y = b.Sched.dequeue ~now in
        if not (popt_equal x y) then
          Alcotest.failf "%s: op %d dequeue at %g: float %s, fast %s" name i now
            (pkt_str x) (pkt_str y)
      | Evict (v, f) ->
        let x = a.Sched.evict ~now v f in
        let y = b.Sched.evict ~now v f in
        if not (popt_equal x y) then
          Alcotest.failf "%s: op %d evict flow %d: float %s, fast %s" name i f
            (pkt_str x) (pkt_str y)
      | Close f ->
        let x = a.Sched.close_flow ~now f in
        let y = b.Sched.close_flow ~now f in
        if List.length x <> List.length y || not (List.for_all2 ( == ) x y) then
          Alcotest.failf "%s: op %d close flow %d: %d vs %d packets (or order differs)"
            name i f (List.length x) (List.length y))
    ops;
  check_int (name ^ ": residual backlog") (a.Sched.size ()) (b.Sched.size ());
  let da = Sched.drain a ~now:final in
  let db = Sched.drain b ~now:final in
  if List.length da <> List.length db || not (List.for_all2 ( == ) da db) then
    Alcotest.failf "%s: final drain order diverges" name

let tie_of w = function
  | `Arrival -> Tag_queue.Arrival
  | `Low -> Tag_queue.Low_rate (Weights.get w)
  | `High -> Tag_queue.High_rate (Weights.get w)

let tie_name = function `Arrival -> "arrival" | `Low -> "low" | `High -> "high"

let test_sfq_fast_differential () =
  List.iter
    (fun tie ->
      List.iter
        (fun (bname, busy) ->
          for seed = 1 to 20 do
            let name = Printf.sprintf "sfq[%s/%s] seed %d" (tie_name tie) bname seed in
            run_differential ~name
              (fun w -> Sfq.sched (Sfq.create ~tie:(tie_of w tie) ~busy_rule:busy w))
              (fun w ->
                Sfq_fast.sched (Sfq_fast.create ~tie:(tie_of w tie) ~busy_rule:busy w))
              (gen_scenario (seed * 7919))
          done)
        [ ("idle_poll", Sfq.Idle_poll); ("on_empty", Sfq.On_empty) ])
    [ `Arrival; `Low; `High ]

let test_scfq_fast_differential () =
  List.iter
    (fun tie ->
      for seed = 1 to 20 do
        let name = Printf.sprintf "scfq[%s] seed %d" (tie_name tie) seed in
        run_differential ~name
          (fun w -> Scfq.sched (Scfq.create ~tie:(tie_of w tie) w))
          (fun w -> Scfq_fast.sched (Scfq_fast.create ~tie:(tie_of w tie) w))
          (gen_scenario ((seed * 7919) + 1))
      done)
    [ `Arrival; `Low; `High ]

let test_vc_fast_differential () =
  List.iter
    (fun tie ->
      for seed = 1 to 20 do
        let name = Printf.sprintf "vc[%s] seed %d" (tie_name tie) seed in
        run_differential ~name
          (fun w -> Vc.sched (Vc.create ~tie:(tie_of w tie) w))
          (fun w -> Virtual_clock_fast.sched (Virtual_clock_fast.create ~tie:(tie_of w tie) w))
          (gen_scenario ((seed * 7919) + 2))
      done)
    [ `Arrival; `Low; `High ]

(* ------------------------------------------------------------------ *)
(* Oracle digests: sfq-fast ≡ sfq across domain counts                  *)

let test_digests_match_across_domains () =
  (* A slice of the frozen theorem pool keeps the sweep quick; the full
     pool runs in the sfq-sweep fastpath CLI and in CI. *)
  let pool = take 24 O.Suite.theorem_pool in
  let base = O.Suite.sfq_cells ~pool () in
  let fast =
    List.filter
      (fun (c : O.Run.cell) -> String.starts_with ~prefix:"sfq-fast#" c.O.Run.label)
      (O.Suite.fastpath_cells ~pool ())
  in
  check_int "cell counts line up" (List.length base) (List.length fast);
  let digests ~domains cells =
    Array.map O.Run.outcome_digest (O.Run.sweep ~domains cells)
  in
  let reference = digests ~domains:1 base in
  List.iter
    (fun domains ->
      let fd = digests ~domains fast in
      Array.iteri
        (fun i expected ->
          check_string (Printf.sprintf "cell %d at %d domains" i domains) expected fd.(i))
        reference)
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Zero-allocation steady state                                         *)

let alloc_pkts n = Array.init n (fun f -> Packet.make ~flow:f ~seq:1 ~len:1000 ~born:0.0 ())

(* Warm (so rings and tables reach peak capacity), compact, then count
   minor words over 10k enqueue/dequeue pairs. The Gc.minor_words calls
   themselves box one float each (~3 words), hence the slack in the
   budget — still 4 orders of magnitude below one word per operation. *)
let alloc_delta step =
  for _ = 1 to 2_000 do
    step ()
  done;
  Gc.compact ();
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    step ()
  done;
  Gc.minor_words () -. before

let test_zero_alloc_steady_state () =
  let n = 32 in
  let stepper_sfq_fast () =
    let t = Sfq_fast.create ~capacity:64 (Weights.uniform 100.0) in
    let pkts = alloc_pkts n in
    Array.iter (Sfq_fast.enqueue t ~now:0.0) pkts;
    let i = ref 0 in
    fun () ->
      Sfq_fast.enqueue t ~now:0.0 pkts.(!i);
      i := (!i + 1) land (n - 1);
      ignore (Sfq_fast.dequeue_exn t)
  in
  let stepper_scfq_fast () =
    let t = Scfq_fast.create ~capacity:64 (Weights.uniform 100.0) in
    let pkts = alloc_pkts n in
    Array.iter (Scfq_fast.enqueue t ~now:0.0) pkts;
    let i = ref 0 in
    fun () ->
      Scfq_fast.enqueue t ~now:0.0 pkts.(!i);
      i := (!i + 1) land (n - 1);
      ignore (Scfq_fast.dequeue_exn t)
  in
  let stepper_vc_fast () =
    let t = Virtual_clock_fast.create ~capacity:64 (Weights.uniform 100.0) in
    let pkts = alloc_pkts n in
    Array.iter (Virtual_clock_fast.enqueue t ~now:0.0) pkts;
    let i = ref 0 in
    fun () ->
      Virtual_clock_fast.enqueue t ~now:0.0 pkts.(!i);
      i := (!i + 1) land (n - 1);
      ignore (Virtual_clock_fast.dequeue_exn t)
  in
  let stepper_sp_pifo () =
    let t = Sp_pifo.create (Weights.uniform 100.0) in
    let pkts = alloc_pkts n in
    Array.iter (Sp_pifo.enqueue t ~now:0.0) pkts;
    let i = ref 0 in
    fun () ->
      Sp_pifo.enqueue t ~now:0.0 pkts.(!i);
      i := (!i + 1) land (n - 1);
      ignore (Sp_pifo.dequeue_exn t)
  in
  List.iter
    (fun (name, mk) ->
      let d = alloc_delta (mk ()) in
      check_bool (Printf.sprintf "%s: %.0f minor words over 10k op pairs" name d) true
        (d <= 64.0))
    [
      ("sfq-fast", stepper_sfq_fast);
      ("scfq-fast", stepper_scfq_fast);
      ("vc-fast", stepper_vc_fast);
      ("sp-pifo", stepper_sp_pifo);
    ];
  (* Contrast: the float scheduler allocates on every operation, which
     is the whole point of the fast path. *)
  let float_step =
    let t = Sfq.create (Weights.uniform 100.0) in
    let pkts = alloc_pkts n in
    Array.iter (Sfq.enqueue t ~now:0.0) pkts;
    let i = ref 0 in
    fun () ->
      Sfq.enqueue t ~now:0.0 pkts.(!i);
      i := (!i + 1) land (n - 1);
      ignore (Sfq.dequeue t ~now:0.0)
  in
  check_bool "float sfq allocates" true (alloc_delta float_step > 1000.0)

(* ------------------------------------------------------------------ *)
(* Saturation rail                                                      *)

let test_saturation_boundary () =
  (* A rate so small the very first delta clamps to the rail. *)
  let t = Sfq_fast.create (Weights.uniform 1e-10) in
  check_bool "fresh scheduler unsaturated" false (Sfq_fast.saturated t);
  check_bool "fresh headroom positive" true (Sfq_fast.headroom t > 0.0);
  let p1 = Packet.make ~flow:0 ~seq:1 ~len:1000 ~born:0.0 () in
  let p2 = Packet.make ~flow:0 ~seq:2 ~len:1000 ~born:0.0 () in
  let p3 = Packet.make ~flow:1 ~seq:1 ~len:1000 ~born:0.0 () in
  Sfq_fast.enqueue t ~now:0.0 p1;
  (* S(p1) = 0, F(p1) saturates immediately. *)
  check_bool "saturated after first finish tag" true (Sfq_fast.saturated t);
  check_float "no headroom at the rail" 0.0 (Sfq_fast.headroom t);
  Sfq_fast.enqueue t ~now:0.0 p2;
  Sfq_fast.enqueue t ~now:0.0 p3;
  (* Order degrades to (tie, arrival) but stays total and loss-free:
     p1 and p3 carry start tag 0 (flows enter at v = 0), p2 rides its
     flow's saturated finish tag. No wrap-around: tags clamp, so p2
     cannot jump ahead of anything. *)
  let a = Sfq_fast.dequeue_exn t in
  let b = Sfq_fast.dequeue_exn t in
  let c = Sfq_fast.dequeue_exn t in
  check_bool "p1 first" true (a == p1);
  check_bool "p3 second" true (b == p3);
  check_bool "p2 last" true (c == p2);
  check_bool "drained" true (Sfq_fast.is_empty t);
  check_int "vtag clamped at the rail, not wrapped" Tag.max_tag (Sfq_fast.vtag t)

(* ------------------------------------------------------------------ *)
(* SP-PIFO                                                              *)

let opt_is p = function Some q -> q == p | None -> false

let drain_n t n =
  let rec go acc n = if n = 0 then List.rev acc else go (Sp_pifo.dequeue_exn t :: acc) (n - 1) in
  go [] n

let test_sp_pifo_create_validation () =
  Alcotest.check_raises "banks 0 rejected"
    (Invalid_argument "Sp_pifo.create: banks must be >= 1") (fun () ->
      ignore (Sp_pifo.create ~banks:0 (Weights.uniform 1.0)))

let test_sp_pifo_single_bank_is_fifo () =
  (* One bank: every admission lands in the same FIFO, so service is
     exactly arrival order no matter how wild the ranks are. *)
  let w = Weights.of_list ~default:1.0 [ (0, 3200.0); (1, 100.0); (2, 800.0) ] in
  let t = Sp_pifo.create ~banks:1 w in
  let r = Rng.create 42 in
  let seqs = Array.make 3 0 in
  let pkts = ref [] in
  for _ = 1 to 40 do
    let f = Rng.int r 3 in
    seqs.(f) <- seqs.(f) + 1;
    let pk =
      Packet.make ~flow:f ~seq:seqs.(f) ~len:(100 * (1 + Rng.int r 10)) ~born:0.0 ()
    in
    Sp_pifo.enqueue t ~now:0.0 pk;
    pkts := pk :: !pkts
  done;
  let pkts = List.rev !pkts in
  check_int "one bank" 1 (Sp_pifo.banks t);
  let out = drain_n t 40 in
  check_bool "global FIFO" true (List.for_all2 ( == ) pkts out);
  check_bool "drained" true (Sp_pifo.is_empty t)

let ascending a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i - 1) > a.(i) then ok := false
  done;
  !ok

let test_sp_pifo_bounds_stay_sorted () =
  let w = Weights.of_list ~default:1.0 [ (0, 3200.0); (1, 100.0) ] in
  let t = Sp_pifo.create ~banks:4 w in
  let r = Rng.create 7 in
  let seqs = Array.make 2 0 in
  for i = 1 to 60 do
    let f = Rng.int r 2 in
    seqs.(f) <- seqs.(f) + 1;
    Sp_pifo.enqueue t ~now:0.0
      (Packet.make ~flow:f ~seq:seqs.(f) ~len:(100 * (1 + Rng.int r 10)) ~born:0.0 ());
    check_bool
      (Printf.sprintf "bounds ascending after admission %d" i)
      true
      (ascending (Sp_pifo.bounds t));
    (* Every admission is exactly one push-up or one push-down. *)
    check_int "admissions accounted" i (Sp_pifo.pushups t + Sp_pifo.pushdowns t);
    if Rng.int r 3 = 0 && not (Sp_pifo.is_empty t) then ignore (Sp_pifo.dequeue_exn t)
  done

let test_sp_pifo_pushdown_adaptation () =
  (* Directed replay of the NSDI'20 adaptation rule at 20 fractional
     bits, two banks: a slow flow (rate 100) drives bank 1's bound up,
     a fast flow (rate 3200) occupies bank 0, and a fresh flow arriving
     at v — below both bounds — must trigger the collective push-down
     by exactly bound_0 - v. Every quantity is dyadic, so the bound
     values are exact. *)
  let q = 1 lsl 20 in
  let w = Weights.of_list ~default:1.0 [ (0, 100.0); (1, 3200.0) ] in
  let t = Sp_pifo.create ~banks:2 ~frac_bits:20 w in
  let p f seq len = Packet.make ~flow:f ~seq ~len ~born:0.0 () in
  let s1 = p 0 1 1000 in
  let s2 = p 0 2 1000 in
  let s3 = p 0 3 1000 in
  let f1 = p 1 1 100 in
  let s4 = p 0 4 1000 in
  let f2 = p 1 2 100 in
  let f3 = p 1 3 100 in
  let g1 = p 2 1 100 in
  (* Slow-flow deltas are 10q, fast-flow deltas q/32. *)
  List.iter (Sp_pifo.enqueue t ~now:0.0) [ s1; s2; s3; f1 ];
  check_bool "bounds after warmup" true (Sp_pifo.bounds t = [| 0; 20 * q |]);
  check_bool "f1 from bank 0" true (Sp_pifo.dequeue_exn t == f1);
  check_bool "s1 next" true (Sp_pifo.dequeue_exn t == s1);
  check_bool "s2 next" true (Sp_pifo.dequeue_exn t == s2);
  (* v is now 10q (s2's rank). *)
  check_int "v tracks served rank" (10 * q) (Sp_pifo.vtag t);
  List.iter (Sp_pifo.enqueue t ~now:0.0) [ s4; f2; f3 ];
  check_bool "bounds before inversion" true
    (Sp_pifo.bounds t = [| (10 * q) + (q / 32); 30 * q |]);
  check_int "no pushdowns yet" 0 (Sp_pifo.pushdowns t);
  check_bool "f2 from bank 0" true (Sp_pifo.dequeue_exn t == f2);
  (* g1 enters at rank v = 10q, below every bound: push-down. *)
  Sp_pifo.enqueue t ~now:0.0 g1;
  check_int "one pushdown" 1 (Sp_pifo.pushdowns t);
  check_int "seven pushups" 7 (Sp_pifo.pushups t);
  check_bool "bounds dropped by the overshoot" true
    (Sp_pifo.bounds t = [| 10 * q; (30 * q) - (q / 32) |]);
  check_bool "bounds still ascending" true (ascending (Sp_pifo.bounds t));
  (* Strict-priority service: bank 0 (f3 then the pushed-down g1),
     then bank 1's slow-flow tail. *)
  let order = drain_n t 4 in
  check_bool "service order" true (List.for_all2 ( == ) order [ f3; g1; s3; s4 ]);
  check_bool "drained" true (Sp_pifo.is_empty t)

let test_sp_pifo_evict_close () =
  let t = Sp_pifo.create ~banks:4 (Weights.uniform 100.0) in
  let p f seq = Packet.make ~flow:f ~seq ~len:100 ~born:0.0 () in
  let p00 = p 0 1 in
  let p01 = p 0 2 in
  let p02 = p 0 3 in
  let p10 = p 1 1 in
  let p11 = p 1 2 in
  List.iter (Sp_pifo.enqueue t ~now:0.0) [ p00; p10; p01; p11; p02 ];
  check_int "size" 5 (Sp_pifo.size t);
  check_int "backlog flow 0" 3 (Sp_pifo.backlog t 0);
  check_bool "evict oldest of flow 0" true (opt_is p00 (Sp_pifo.evict t Sched.Oldest 0));
  check_bool "evict newest of flow 0" true (opt_is p02 (Sp_pifo.evict t Sched.Newest 0));
  check_int "backlog after evictions" 1 (Sp_pifo.backlog t 0);
  let closed = Sp_pifo.close_flow t 1 in
  check_bool "close returns oldest first" true
    (List.length closed = 2 && List.for_all2 ( == ) closed [ p10; p11 ]);
  check_int "backlog of closed flow" 0 (Sp_pifo.backlog t 1);
  check_bool "last survivor" true (opt_is p01 (Sp_pifo.peek t));
  check_bool "dequeues it" true (Sp_pifo.dequeue_exn t == p01);
  (* conservation: 5 enqueued = 2 evicted + 2 closed + 1 dequeued *)
  check_bool "empty" true (Sp_pifo.is_empty t);
  check_bool "evict on empty flow" true (Sp_pifo.evict t Sched.Oldest 0 = None);
  check_bool "close on empty flow" true (Sp_pifo.close_flow t 0 = []);
  Alcotest.check_raises "dequeue_exn on empty"
    (Invalid_argument "Sp_pifo.dequeue_exn: empty queue") (fun () ->
      ignore (Sp_pifo.dequeue_exn t))

(* ------------------------------------------------------------------ *)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "fastpath"
    [
      ( "tag",
        [
          Alcotest.test_case "codec basics" `Quick test_tag_codec_basics;
          Alcotest.test_case "dyadic roundtrip" `Quick test_tag_dyadic_roundtrip;
          Alcotest.test_case "clamps" `Quick test_tag_codec_clamps;
          Alcotest.test_case "delta" `Quick test_tag_delta;
          Alcotest.test_case "saturation" `Quick test_tag_saturation;
          Alcotest.test_case "tie_encode directed" `Quick test_tie_encode_directed;
          Alcotest.test_case "tie_encode saturation boundary" `Quick
            test_tie_encode_saturation_boundary;
          q prop_tie_encode_monotone;
        ] );
      ( "iheap",
        [
          Alcotest.test_case "empty" `Quick test_iheap_empty;
          Alcotest.test_case "basics" `Quick test_iheap_basics;
          Alcotest.test_case "remove_matching" `Quick test_iheap_remove_matching;
          q prop_iheap_pop_order_matches_reference;
          q prop_iheap_tie_uid_stability;
          q prop_iheap_interleaved;
          q prop_cross_heap_tie_agreement;
        ] );
      ( "differential",
        [
          Alcotest.test_case "sfq-fast == sfq (dyadic)" `Quick test_sfq_fast_differential;
          Alcotest.test_case "scfq-fast == scfq (dyadic)" `Quick
            test_scfq_fast_differential;
          Alcotest.test_case "vc-fast == vc (dyadic)" `Quick test_vc_fast_differential;
          Alcotest.test_case "digests match at 1/2/4/8 domains" `Slow
            test_digests_match_across_domains;
        ] );
      ( "allocation",
        [ Alcotest.test_case "zero-alloc steady state" `Quick test_zero_alloc_steady_state ] );
      ( "saturation",
        [ Alcotest.test_case "rail behaviour" `Quick test_saturation_boundary ] );
      ( "sp_pifo",
        [
          Alcotest.test_case "create validation" `Quick test_sp_pifo_create_validation;
          Alcotest.test_case "single bank is FIFO" `Quick test_sp_pifo_single_bank_is_fifo;
          Alcotest.test_case "bounds stay sorted" `Quick test_sp_pifo_bounds_stay_sorted;
          Alcotest.test_case "push-down adaptation" `Quick test_sp_pifo_pushdown_adaptation;
          Alcotest.test_case "evict and close" `Quick test_sp_pifo_evict_close;
        ] );
    ]
