(* Golden-trace regression corpus.

   The property oracles check that the theorems hold; they structurally
   cannot notice a behavioral change that stays inside the bounds (a
   different tie-break, a reordered-but-still-fair schedule). These
   tests recompute the compact digests — per-flow packet counts, service
   order hashes, %h-exact headline numbers — for E1, E3/Fig-1(b) and
   Table 1 under the default seeds and diff them against the checked-in
   corpus, so silent drift fails loudly with the first differing line.

   On an intentional change, regenerate with
     dune exec bin/sfq_sweep.exe -- golden > test/golden/digests.expected *)

let corpus_path =
  if Sys.file_exists "golden/digests.expected" then "golden/digests.expected"
  else "../golden/digests.expected"

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let strip_comments lines =
  List.filter (fun l -> not (String.length l > 0 && l.[0] = '#')) lines

let test_golden_digests () =
  let expected = strip_comments (read_lines corpus_path) in
  let actual =
    strip_comments (String.split_on_char '\n' (Sfq_experiments.Registry.golden_corpus ()))
    |> List.filter (fun l -> l <> "")
  in
  let expected = List.filter (fun l -> l <> "") expected in
  if List.length expected = 0 then Alcotest.fail "golden corpus is empty";
  let rec diff i = function
    | [], [] -> ()
    | e :: es, a :: aa ->
      if not (String.equal e a) then
        Alcotest.failf
          "golden digest drift at line %d:@.  expected: %s@.  actual:   %s@.(an \
           intentional change needs test/golden/digests.expected regenerated — \
           see the file header)"
          i e a
      else diff (i + 1) (es, aa)
    | es, aa ->
      Alcotest.failf "golden corpus length drift: %d expected vs %d actual lines"
        (i + List.length es) (i + List.length aa)
  in
  diff 1 (expected, actual)

(* The three compact renderers must themselves be deterministic: two
   in-process runs produce the same text (guards against accidental
   dependence on wall clock, global Random state, or GC layout). *)
let test_compact_self_deterministic () =
  List.iter
    (fun id ->
      let once = Sfq_experiments.Registry.compact ~id ~quick:true () in
      let twice = Sfq_experiments.Registry.compact ~id ~quick:true () in
      match (once, twice) with
      | Some a, Some b ->
        if not (String.equal a b) then Alcotest.failf "%s: compact digest unstable" id
      | _ -> Alcotest.failf "%s: compact digest missing" id)
    [ "example-1" ]

let () =
  Alcotest.run "golden"
    [
      ( "corpus",
        [
          Alcotest.test_case "E1/E3/Table-1 digests match checked-in corpus" `Quick
            test_golden_digests;
          Alcotest.test_case "compact renderer is deterministic" `Quick
            test_compact_self_deterministic;
        ] );
    ]
