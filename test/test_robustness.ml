(* Overload & churn robustness: the finite-buffer drop policies, the
   dynamic flow lifecycle, and the capacity hygiene of every structure
   recycling leans on.

   The directed cases pin each Buffered policy's exact victim choice;
   the qcheck properties check the laws that must survive any
   interleaving: budgets are never exceeded, drops only fire at a
   saturated budget, conservation (enqueued = departed + dropped +
   backlogged) holds for all nine disciplines under random
   churn/overload/rate-fluctuation workloads, and a closed-then-reopened
   flow re-enters at S = v(t) (eq. 4 with the finish tag forgotten). *)

open Sfq_util
open Sfq_base
open Sfq_sched
open Sfq_core
open Sfq_oracle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let pkt ?(len = 1000) flow seq = Packet.make ~flow ~seq ~len ~born:0.0 ()

(* A buffered SFQ (equal weights) recording every drop. *)
let buffered ?per_flow ?aggregate ~policy () =
  let s = Sfq.create (Weights.of_list ~default:1.0 []) in
  let drops = ref [] in
  let on_drop ~now:_ ~reason p = drops := (reason, p) :: !drops in
  let b =
    Buffered.wrap ~on_drop (Buffered.config ?per_flow ?aggregate ~policy ()) (Sfq.sched s)
  in
  (Buffered.sched b, Sfq.sched s, drops)

let drop_list drops = List.rev !drops

(* ------------------------------------------------------------------ *)
(* Directed policy semantics *)

let test_drop_tail_per_flow () =
  let v, inner, drops = buffered ~per_flow:2 ~policy:Buffered.Drop_tail () in
  List.iter (fun s -> v.Sched.enqueue ~now:0.0 (pkt 1 s)) [ 1; 2; 3 ];
  check_int "flow stays at budget" 2 (inner.Sched.backlog 1);
  (match drop_list drops with
  | [ (Buffered.Rejected, p) ] -> check_int "arrival itself refused" 3 p.Packet.seq
  | _ -> Alcotest.fail "expected exactly one Rejected drop");
  (* below budget: no drop *)
  ignore (v.Sched.dequeue ~now:0.0);
  v.Sched.enqueue ~now:0.0 (pkt 1 4);
  check_int "re-admitted after service freed a slot" 1 (List.length !drops)

let test_drop_front_per_flow () =
  let v, inner, drops = buffered ~per_flow:2 ~policy:Buffered.Drop_front () in
  List.iter (fun s -> v.Sched.enqueue ~now:0.0 (pkt 1 s)) [ 1; 2; 3 ];
  check_int "flow stays at budget" 2 (inner.Sched.backlog 1);
  (match drop_list drops with
  | [ (Buffered.Evicted, p) ] -> check_int "oldest packet evicted" 1 p.Packet.seq
  | _ -> Alcotest.fail "expected exactly one Evicted drop");
  let seqs =
    List.init 2 (fun _ ->
        match v.Sched.dequeue ~now:0.0 with Some p -> p.Packet.seq | None -> -1)
  in
  Alcotest.(check (list int)) "survivors serve in order" [ 2; 3 ] seqs

let test_longest_queue_per_flow_rejects () =
  (* the arrival is its own flow's newest packet, so LQF refuses it *)
  let v, inner, drops = buffered ~per_flow:2 ~policy:Buffered.Longest_queue () in
  List.iter (fun s -> v.Sched.enqueue ~now:0.0 (pkt 1 s)) [ 1; 2; 3 ];
  check_int "flow stays at budget" 2 (inner.Sched.backlog 1);
  match drop_list drops with
  | [ (Buffered.Rejected, p) ] -> check_int "newest = the arrival" 3 p.Packet.seq
  | _ -> Alcotest.fail "expected exactly one Rejected drop"

let test_drop_front_aggregate_evicts_next_to_depart () =
  let v, inner, drops = buffered ~aggregate:2 ~policy:Buffered.Drop_front () in
  v.Sched.enqueue ~now:0.0 (pkt 1 1);
  v.Sched.enqueue ~now:0.0 (pkt 2 1);
  v.Sched.enqueue ~now:0.0 (pkt 3 1);
  check_int "aggregate stays at budget" 2 (inner.Sched.size ());
  (match drop_list drops with
  | [ (Buffered.Evicted, p) ] -> check_int "head-of-line flow pays" 1 p.Packet.flow
  | _ -> Alcotest.fail "expected exactly one Evicted drop");
  let flows =
    List.init 2 (fun _ ->
        match v.Sched.dequeue ~now:0.0 with Some p -> p.Packet.flow | None -> -1)
  in
  Alcotest.(check (list int)) "flow 1's slot went to flow 3" [ 2; 3 ] flows

let test_longest_queue_aggregate_evicts_newest_of_longest () =
  let v, inner, drops = buffered ~aggregate:3 ~policy:Buffered.Longest_queue () in
  v.Sched.enqueue ~now:0.0 (pkt 1 1);
  v.Sched.enqueue ~now:0.0 (pkt 1 2);
  v.Sched.enqueue ~now:0.0 (pkt 2 1);
  v.Sched.enqueue ~now:0.0 (pkt 2 2);
  check_int "aggregate stays at budget" 3 (inner.Sched.size ());
  (match drop_list drops with
  | [ (Buffered.Evicted, p) ] ->
    check_int "longest flow pays" 1 p.Packet.flow;
    check_int "with its newest packet" 2 p.Packet.seq
  | _ -> Alcotest.fail "expected exactly one Evicted drop");
  check_int "flow 1 trimmed" 1 (inner.Sched.backlog 1);
  check_int "flow 2's arrival admitted" 2 (inner.Sched.backlog 2)

let test_no_evict_degrades_to_reject () =
  (* a discipline that cannot remove mid-queue packets (Sched.no_evict):
     eviction policies must refuse the arrival rather than lose a
     packet silently *)
  let f = Fifo.create () in
  let raw = { (Fifo.sched f) with Sched.evict = Sched.no_evict } in
  let drops = ref [] in
  let on_drop ~now:_ ~reason p = drops := (reason, p) :: !drops in
  let b =
    Buffered.wrap ~on_drop (Buffered.config ~per_flow:1 ~policy:Buffered.Drop_front ()) raw
  in
  let v = Buffered.sched b in
  v.Sched.enqueue ~now:0.0 (pkt 1 1);
  v.Sched.enqueue ~now:0.0 (pkt 1 2);
  check_int "nothing lost silently" 1 (Fifo.size f);
  match drop_list drops with
  | [ (Buffered.Rejected, p) ] -> check_int "arrival refused instead" 2 p.Packet.seq
  | _ -> Alcotest.fail "expected exactly one Rejected drop"

(* ------------------------------------------------------------------ *)
(* Lifecycle tag semantics (eq. 4 at reopen) *)

let test_close_forgets_finish_tag () =
  let s = Sfq.create (Weights.of_list ~default:1.0 []) in
  List.iter (fun q -> Sfq.enqueue s ~now:0.0 (pkt 1 q)) [ 1; 2; 3 ];
  Sfq.enqueue s ~now:0.0 (pkt 2 1);
  (* serve f1#1 (stag 0), f2#1 (stag 0), f1#2 (stag 1000) *)
  for _ = 1 to 3 do
    ignore (Sfq.dequeue s ~now:0.0)
  done;
  let v = Sfq.vtime s in
  check_bool "virtual time advanced" true (v > 0.0);
  let flushed = Sfq.close_flow s 1 in
  check_int "backlog flushed" 1 (List.length flushed);
  let stag, _ = Sfq.enqueue_tagged s ~now:0.0 (pkt 1 1) in
  check_bool "reopened flow enters at v(t), not its stale F"
    true (stag = v)

let test_evict_keeps_finish_tag_charged () =
  let s = Sfq.create (Weights.of_list ~default:1.0 []) in
  Sfq.enqueue s ~now:0.0 (pkt 1 1);
  Sfq.enqueue s ~now:0.0 (pkt 1 2);
  (match Sfq.evict s Sched.Newest 1 with
  | Some p -> check_int "newest evicted" 2 p.Packet.seq
  | None -> Alcotest.fail "evict found nothing");
  (* F stays at 2000: the evicted packet's virtual service remains
     charged, so the next start tag can only move later (eq. 4) *)
  let stag, _ = Sfq.enqueue_tagged s ~now:0.0 (pkt 1 3) in
  check_bool "tags did not roll back" true (stag >= 2000.0)

(* ------------------------------------------------------------------ *)
(* QCheck properties *)

let q test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x0d6 |]) ~speed_level:`Quick
    test

let prop_conservation_all_disciplines =
  QCheck.Test.make ~count:15
    ~name:"conservation holds for all disciplines under churn + overload"
    (Workload.arbitrary ~churn:true ~overload:true ~rate_fluct:true ())
    (fun w ->
      List.for_all
        (fun (c : Run.cell) -> (Run.run_cell c).Run.violations = [])
        (Suite.stress_cells ~pool:[ w ] ()))

(* Random op soup against a buffered SFQ: budgets are invariants, and a
   drop is only legal at the instant a budget is saturated. *)
let budget_ops_gen =
  QCheck.Gen.(
    triple (int_range 0 2)
      (pair (int_range 1 3) (int_range 1 6))
      (list_size (int_range 10 80) (pair (int_range 1 4) (int_range 0 2))))

let print_budget_ops (policy, (pf, ag), ops) =
  Printf.sprintf "policy=%d per_flow=%d aggregate=%d ops=[%s]" policy pf ag
    (String.concat "; " (List.map (fun (f, k) -> Printf.sprintf "(%d,%d)" f k) ops))

let prop_drop_only_at_saturated_budget =
  QCheck.Test.make ~count:200 ~name:"budgets never exceeded; drops only at saturation"
    (QCheck.make ~print:print_budget_ops budget_ops_gen)
    (fun (policy_ix, (pf, ag), ops) ->
      let policy =
        List.nth Buffered.[ Drop_tail; Drop_front; Longest_queue ] policy_ix
      in
      let v, inner, drops = buffered ~per_flow:pf ~aggregate:ag ~policy () in
      let seqs = Array.make 5 0 in
      let enqueued = ref 0 and departed = ref 0 in
      let ok = ref true in
      List.iter
        (fun (flow, kind) ->
          if kind = 2 then (
            match v.Sched.dequeue ~now:0.0 with
            | Some _ -> incr departed
            | None -> ())
          else begin
            let before = List.length !drops in
            let flow_full = inner.Sched.backlog flow >= pf in
            let agg_full = inner.Sched.size () >= ag in
            seqs.(flow) <- seqs.(flow) + 1;
            v.Sched.enqueue ~now:0.0 (pkt flow seqs.(flow));
            incr enqueued;
            if List.length !drops > before && not (flow_full || agg_full) then
              ok := false
          end;
          (* budgets are hard invariants at every step *)
          if inner.Sched.size () > ag then ok := false;
          for f = 1 to 4 do
            if inner.Sched.backlog f > pf then ok := false
          done)
        ops;
      !ok && !enqueued = !departed + List.length !drops + inner.Sched.size ())

let prop_reopen_at_vtime =
  QCheck.Test.make ~count:200 ~name:"close-then-reopen re-enters at S = v(t)"
    (QCheck.make
       ~print:(fun ops -> String.concat ";" (List.map string_of_int ops))
       QCheck.Gen.(list_size (int_range 1 40) (int_range 0 3)))
    (fun ops ->
      (* ops: 0-2 = enqueue to flow (op+1), 3 = dequeue *)
      let s = Sfq.create (Weights.of_list ~default:1.0 []) in
      let seqs = Array.make 4 0 in
      List.iter
        (fun op ->
          if op = 3 then ignore (Sfq.dequeue s ~now:0.0)
          else begin
            seqs.(op) <- seqs.(op) + 1;
            Sfq.enqueue s ~now:0.0 (pkt (op + 1) seqs.(op))
          end)
        ops;
      let v = Sfq.vtime s in
      ignore (Sfq.close_flow s 1);
      let stag, _ = Sfq.enqueue_tagged s ~now:0.0 (pkt 1 1) in
      stag = Float.max v 0.0)

(* ------------------------------------------------------------------ *)
(* Capacity hygiene: recycling must not pin burst-peak memory *)

let test_vec_compact_releases_capacity () =
  let v = Vec.create () in
  for i = 1 to 1000 do
    Vec.push v i
  done;
  check_bool "grew" true (Vec.capacity v >= 1000);
  Vec.clear v;
  check_bool "clear keeps the backing array" true (Vec.capacity v >= 1000);
  Vec.compact v;
  check_int "compact on empty drops it" 0 (Vec.capacity v);
  for i = 1 to 3 do
    Vec.push v i
  done;
  Vec.compact v;
  check_int "compact shrinks to length" 3 (Vec.capacity v);
  check_int "contents survive" 2 (Vec.get v 1);
  Vec.push v 4;
  check_int "still grows after compact" 4 (Vec.length v)

let test_fheap_capacity_and_removal () =
  let h = Fheap.create ~capacity:1 () in
  for i = 1 to 100 do
    Fheap.add h ~key:(float_of_int (100 - i)) ~tie:0.0 ~uid:i i
  done;
  check_bool "backing arrays grew" true (Fheap.capacity h >= 100);
  (* removal surgery keeps the order total *)
  (match Fheap.remove_matching h ~pred:(fun x -> x mod 7 = 0) with
  | Some (_, x) -> check_int "oldest match (smallest uid)" 7 x
  | None -> Alcotest.fail "expected a match");
  (match Fheap.remove_matching ~newest:true h ~pred:(fun x -> x mod 7 = 0) with
  | Some (_, x) -> check_int "newest match (largest uid)" 98 x
  | None -> Alcotest.fail "expected a match");
  let rec drain last n =
    match Fheap.pop h with
    | None -> n
    | Some (k, _) ->
      check_bool "pop order still ascending" true (k >= last);
      drain k (n + 1)
  in
  check_int "nothing lost or duplicated" 98 (drain neg_infinity 0);
  Fheap.clear h;
  check_int "clear empties" 0 (Fheap.length h)

let test_flow_heap_flush_releases_ring () =
  let fh = Flow_heap.create () in
  for i = 1 to 64 do
    Flow_heap.push fh ~flow:7 ~key:(float_of_int i) ~tie:0.0 i
  done;
  check_bool "burst grew the ring" true (Flow_heap.ring_capacity fh 7 >= 64);
  let flushed = Flow_heap.flush_flow fh 7 in
  check_int "all entries flushed" 64 (List.length flushed);
  check_bool "oldest first" true
    (List.mapi (fun i p -> p.Flow_heap.value = i + 1) flushed |> List.for_all Fun.id);
  check_int "ring released entirely" 0 (Flow_heap.ring_capacity fh 7);
  check_int "store empty" 0 (Flow_heap.size fh);
  (* the recycled id starts from scratch *)
  Flow_heap.push fh ~flow:7 ~key:0.0 ~tie:0.0 99;
  check_bool "fresh ring is small" true (Flow_heap.ring_capacity fh 7 < 64);
  match Flow_heap.pop fh with
  | Some p -> check_int "and serves" 99 p.Flow_heap.value
  | None -> Alcotest.fail "expected the repushed entry"

let test_flow_heap_evict_ends () =
  let fh = Flow_heap.create () in
  List.iter (fun i -> Flow_heap.push fh ~flow:1 ~key:(float_of_int i) ~tie:0.0 i) [ 1; 2; 3 ];
  (match Flow_heap.evict_front fh 1 with
  | Some p -> check_int "front = oldest" 1 p.Flow_heap.value
  | None -> Alcotest.fail "expected front eviction");
  (match Flow_heap.evict_back fh 1 with
  | Some p -> check_int "back = newest" 3 p.Flow_heap.value
  | None -> Alcotest.fail "expected back eviction");
  check_int "middle survives" 1 (Flow_heap.size fh);
  match Flow_heap.pop fh with
  | Some p -> check_int "and pops" 2 p.Flow_heap.value
  | None -> Alcotest.fail "expected the survivor"

let test_flow_registry_recycles () =
  let r = Flow_registry.create () in
  let a = Flow_registry.open_flow r in
  let b = Flow_registry.open_flow r in
  check_int "fresh ids are dense" 1 (a + b);
  Flow_registry.close_flow r a;
  check_int "most recently closed id is reissued" a (Flow_registry.open_flow r);
  Alcotest.check_raises "closing a closed id raises"
    (Invalid_argument "Flow_registry.close_flow: flow 1 is not open") (fun () ->
      Flow_registry.close_flow r b;
      Flow_registry.close_flow r b)

let test_flow_registry_bounded_by_window () =
  let r = Flow_registry.create () in
  let window = 5 in
  let live = Queue.create () in
  for _ = 1 to 1000 do
    Queue.push (Flow_registry.open_flow r) live;
    if Queue.length live > window then Flow_registry.close_flow r (Queue.pop live)
  done;
  check_int "peak concurrency = window + 1" (window + 1) (Flow_registry.peak_live r);
  check_int "dense-state bound = peak, not 1000 opens" (window + 1)
    (Flow_registry.high_water r);
  check_int "every open counted" 1000 (Flow_registry.opened r);
  check_int "window still live" window (Flow_registry.live r)

let test_flow_table_dense_reuse () =
  let t = Flow_table.create ~default:(fun _ -> 0) in
  for f = 0 to 99 do
    Flow_table.set t f f
  done;
  check_int "all present" 100 (Flow_table.length t);
  check_bool "dense slab sized by the largest id" true (Flow_table.dense_capacity t >= 100);
  let cap = Flow_table.dense_capacity t in
  Flow_table.clear t;
  check_int "clear empties" 0 (Flow_table.length t);
  for f = 0 to 99 do
    Flow_table.set t f (2 * f)
  done;
  check_int "reuse does not regrow" cap (Flow_table.dense_capacity t);
  check_int "fresh values" 66 (Flow_table.find t 33)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "robustness"
    [
      ( "policies",
        [
          Alcotest.test_case "drop-tail per-flow" `Quick test_drop_tail_per_flow;
          Alcotest.test_case "drop-front per-flow" `Quick test_drop_front_per_flow;
          Alcotest.test_case "longest-queue per-flow rejects" `Quick
            test_longest_queue_per_flow_rejects;
          Alcotest.test_case "drop-front aggregate" `Quick
            test_drop_front_aggregate_evicts_next_to_depart;
          Alcotest.test_case "longest-queue aggregate" `Quick
            test_longest_queue_aggregate_evicts_newest_of_longest;
          Alcotest.test_case "no-evict degrades to reject" `Quick
            test_no_evict_degrades_to_reject;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "close forgets the finish tag" `Quick
            test_close_forgets_finish_tag;
          Alcotest.test_case "evict keeps the finish tag charged" `Quick
            test_evict_keeps_finish_tag_charged;
        ] );
      ( "properties",
        [
          q prop_conservation_all_disciplines;
          q prop_drop_only_at_saturated_budget;
          q prop_reopen_at_vtime;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "Vec.compact releases burst capacity" `Quick
            test_vec_compact_releases_capacity;
          Alcotest.test_case "Fheap capacity + surgical removal" `Quick
            test_fheap_capacity_and_removal;
          Alcotest.test_case "Flow_heap.flush_flow releases the ring" `Quick
            test_flow_heap_flush_releases_ring;
          Alcotest.test_case "Flow_heap evicts the right ends" `Quick
            test_flow_heap_evict_ends;
          Alcotest.test_case "Flow_registry recycles LIFO" `Quick
            test_flow_registry_recycles;
          Alcotest.test_case "Flow_registry bounded by peak concurrency" `Quick
            test_flow_registry_bounded_by_window;
          Alcotest.test_case "Flow_table dense slab reuse" `Quick
            test_flow_table_dense_reuse;
        ] );
    ]
