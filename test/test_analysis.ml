(* Tests for the measurement layer: service logs, busy intervals,
   interval intersection and the empirical fairness index. *)

open Sfq_base
open Sfq_netsim
open Sfq_analysis

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let pkt ~flow ~seq ~len () = Packet.make ~flow ~seq ~len ~born:0.0 ()
let fifo () = Sfq_sched.Fifo.sched (Sfq_sched.Fifo.create ())

(* A constant-rate FIFO server with a service log. *)
let logged_server sim rate =
  let server = Server.create sim ~name:"s" ~rate:(Rate_process.constant rate) ~sched:(fifo ()) () in
  (server, Service_log.attach server)

(* ------------------------------------------------------------------ *)
(* Service_log                                                          *)

let test_completions_recorded () =
  let sim = Sim.create () in
  let server, log = logged_server sim 100.0 in
  Sim.schedule sim ~at:0.0 (fun () ->
      Server.inject server (pkt ~flow:1 ~seq:1 ~len:100 ());
      Server.inject server (pkt ~flow:2 ~seq:1 ~len:50 ()));
  Sim.run_all sim ();
  check_int "two completions" 2 (Sfq_util.Vec.length (Service_log.completions log));
  Alcotest.(check (list int)) "flows" [ 1; 2 ] (Service_log.flows log)

let test_busy_intervals () =
  let sim = Sim.create () in
  let server, log = logged_server sim 100.0 in
  Sim.schedule sim ~at:0.0 (fun () -> Server.inject server (pkt ~flow:1 ~seq:1 ~len:100 ()));
  Sim.schedule sim ~at:5.0 (fun () -> Server.inject server (pkt ~flow:1 ~seq:2 ~len:100 ()));
  Sim.run_all sim ();
  (match Service_log.busy_intervals log 1 ~until:10.0 with
  | [ (a1, b1); (a2, b2) ] ->
    check_float "first opens" 0.0 a1;
    check_float "first closes" 1.0 b1;
    check_float "second opens" 5.0 a2;
    check_float "second closes" 6.0 b2
  | l -> Alcotest.fail (Printf.sprintf "expected 2 intervals, got %d" (List.length l)))

let test_busy_interval_still_open () =
  let sim = Sim.create () in
  let server, log = logged_server sim 1.0 in
  Sim.schedule sim ~at:0.0 (fun () -> Server.inject server (pkt ~flow:1 ~seq:1 ~len:100 ()));
  Sim.run sim ~until:10.0;
  (match Service_log.busy_intervals log 1 ~until:10.0 with
  | [ (0.0, 10.0) ] -> ()
  | _ -> Alcotest.fail "expected one open interval closed at until")

let test_service_window_semantics () =
  (* A packet counts only if it starts AND finishes in the window. *)
  let sim = Sim.create () in
  let server, log = logged_server sim 100.0 in
  Sim.schedule sim ~at:0.0 (fun () ->
      Server.inject server (pkt ~flow:1 ~seq:1 ~len:100 ());
      (* served [0,1] *)
      Server.inject server (pkt ~flow:1 ~seq:2 ~len:100 ()) (* served [1,2] *));
  Sim.run_all sim ();
  check_float "full window" 200.0 (Service_log.service log 1 ~t1:0.0 ~t2:2.0);
  check_float "second only" 100.0 (Service_log.service log 1 ~t1:0.5 ~t2:2.0);
  check_float "neither (split)" 0.0 (Service_log.service log 1 ~t1:0.5 ~t2:1.5)

(* ------------------------------------------------------------------ *)
(* Fairness                                                             *)

let test_intersect_intervals () =
  let a = [ (0.0, 2.0); (4.0, 6.0) ] and b = [ (1.0, 5.0) ] in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "intersection"
    [ (1.0, 2.0); (4.0, 5.0) ]
    (Fairness.intersect_intervals a b);
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "disjoint" [] (Fairness.intersect_intervals [ (0.0, 1.0) ] [ (2.0, 3.0) ])

let test_exact_h_alternating_is_tight () =
  (* FIFO alternating equal packets: max gap is one packet of
     normalized service. *)
  let sim = Sim.create () in
  let server, log = logged_server sim 100.0 in
  Sim.schedule sim ~at:0.0 (fun () ->
      for seq = 1 to 5 do
        Server.inject server (pkt ~flow:1 ~seq ~len:100 ());
        Server.inject server (pkt ~flow:2 ~seq ~len:100 ())
      done);
  Sim.run_all sim ();
  let h = Fairness.exact_h log ~f:1 ~m:2 ~r_f:1.0 ~r_m:1.0 ~until:(Sim.now sim) in
  check_float "one packet" 100.0 h

let test_exact_h_starved_flow () =
  (* FIFO serving all of flow 1 then all of flow 2: H = full backlog. *)
  let sim = Sim.create () in
  let server, log = logged_server sim 100.0 in
  Sim.schedule sim ~at:0.0 (fun () ->
      for seq = 1 to 4 do
        Server.inject server (pkt ~flow:1 ~seq ~len:100 ())
      done;
      for seq = 1 to 4 do
        Server.inject server (pkt ~flow:2 ~seq ~len:100 ())
      done);
  Sim.run_all sim ();
  let h = Fairness.exact_h log ~f:1 ~m:2 ~r_f:1.0 ~r_m:1.0 ~until:(Sim.now sim) in
  check_float "four packets" 400.0 h

let test_exact_h_no_overlap_is_zero () =
  let sim = Sim.create () in
  let server, log = logged_server sim 100.0 in
  Sim.schedule sim ~at:0.0 (fun () -> Server.inject server (pkt ~flow:1 ~seq:1 ~len:100 ()));
  Sim.schedule sim ~at:10.0 (fun () -> Server.inject server (pkt ~flow:2 ~seq:1 ~len:100 ()));
  Sim.run_all sim ();
  check_float "never both backlogged" 0.0
    (Fairness.exact_h log ~f:1 ~m:2 ~r_f:1.0 ~r_m:1.0 ~until:(Sim.now sim))

let test_approx_close_to_exact () =
  let sim = Sim.create () in
  let server, log = logged_server sim 100.0 in
  Sim.schedule sim ~at:0.0 (fun () ->
      for seq = 1 to 20 do
        Server.inject server (pkt ~flow:1 ~seq ~len:100 ());
        Server.inject server (pkt ~flow:2 ~seq ~len:50 ())
      done);
  Sim.run_all sim ();
  let exact = Fairness.exact_h log ~f:1 ~m:2 ~r_f:1.0 ~r_m:1.0 ~until:(Sim.now sim) in
  let approx = Fairness.approx_h log ~f:1 ~m:2 ~r_f:1.0 ~r_m:1.0 ~until:(Sim.now sim) in
  (* The streaming index may over- or under-shoot by at most one packet
     of each flow. *)
  check_bool "within one packet" true (Float.abs (exact -. approx) <= 150.0 +. 1e-9)

let test_weights_scale_h () =
  (* Doubling both rates halves the normalized index. *)
  let run r =
    let sim = Sim.create () in
    let server, log = logged_server sim 100.0 in
    Sim.schedule sim ~at:0.0 (fun () ->
        for seq = 1 to 4 do
          Server.inject server (pkt ~flow:1 ~seq ~len:100 ())
        done;
        for seq = 1 to 4 do
          Server.inject server (pkt ~flow:2 ~seq ~len:100 ())
        done);
    Sim.run_all sim ();
    Fairness.exact_h log ~f:1 ~m:2 ~r_f:r ~r_m:r ~until:(Sim.now sim)
  in
  check_float "halved" (run 1.0 /. 2.0) (run 2.0)

let test_throughput () =
  let sim = Sim.create () in
  let server, log = logged_server sim 100.0 in
  Sim.schedule sim ~at:0.0 (fun () ->
      for seq = 1 to 10 do
        Server.inject server (pkt ~flow:1 ~seq ~len:100 ())
      done);
  Sim.run_all sim ();
  check_float "full rate" 100.0 (Fairness.throughput log 1 ~t1:0.0 ~t2:10.0)

let test_max_pairwise () =
  let sim = Sim.create () in
  let server, log = logged_server sim 100.0 in
  Sim.schedule sim ~at:0.0 (fun () ->
      for seq = 1 to 3 do
        List.iter (fun flow -> Server.inject server (pkt ~flow ~seq ~len:100 ())) [ 1; 2; 3 ]
      done);
  Sim.run_all sim ();
  let rates = [ (1, 1.0); (2, 1.0); (3, 1.0) ] in
  let hmax = Fairness.max_pairwise_h log ~rates ~until:(Sim.now sim) ~exact:true in
  let h12 = Fairness.exact_h log ~f:1 ~m:2 ~r_f:1.0 ~r_m:1.0 ~until:(Sim.now sim) in
  check_bool "max dominates" true (hmax >= h12)

(* ------------------------------------------------------------------ *)
(* Csv_out                                                              *)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv_out.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv_out.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv_out.escape "a\"b")

let test_csv_to_string () =
  Alcotest.(check string) "document" "x,y\n1,2\n3,4\n"
    (Csv_out.to_string ~header:[ "x"; "y" ] ~rows:[ [ "1"; "2" ]; [ "3"; "4" ] ])

let test_csv_of_series () =
  Alcotest.(check (list (list string))) "series"
    [ [ "0.5"; "2" ]; [ "1"; "3" ] ]
    (Csv_out.of_series [ (0.5, 2.0); (1.0, 3.0) ])

let test_csv_write_roundtrip () =
  let path = Filename.temp_file "sfq" ".csv" in
  Csv_out.write ~path ~header:[ "a" ] ~rows:[ [ "1" ] ];
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "roundtrip" "a\n1\n" content

(* A minimal RFC-4180 reader: the inverse of Csv_out's writer, for the
   round-trip property. Csv_out quotes whole cells, so a quote can only
   open a cell. *)
let parse_csv s =
  let n = String.length s in
  let rows = ref [] and row = ref [] and buf = Buffer.create 16 in
  let i = ref 0 in
  let flush_cell () =
    row := Buffer.contents buf :: !row;
    Buffer.clear buf
  in
  let flush_row () =
    flush_cell ();
    rows := List.rev !row :: !rows;
    row := []
  in
  while !i < n do
    match s.[!i] with
    | '"' ->
      incr i;
      let fin = ref false in
      while not !fin do
        if !i >= n then failwith "unterminated quote"
        else if s.[!i] = '"' then
          if !i + 1 < n && s.[!i + 1] = '"' then begin
            Buffer.add_char buf '"';
            i := !i + 2
          end
          else begin
            fin := true;
            incr i
          end
        else begin
          Buffer.add_char buf s.[!i];
          incr i
        end
      done
    | ',' ->
      flush_cell ();
      incr i
    | '\n' ->
      flush_row ();
      incr i
    | c ->
      Buffer.add_char buf c;
      incr i
  done;
  List.rev !rows

let csv_doc_gen =
  QCheck.Gen.(
    let cell =
      string_size ~gen:(oneofl [ 'a'; 'b'; ','; '"'; '\n'; '\r'; ' ' ]) (0 -- 10)
    in
    pair (list_size (1 -- 4) cell) (list_size (0 -- 5) (list_size (1 -- 4) cell)))

let prop_csv_roundtrip =
  QCheck.Test.make ~name:"csv: escape/to_string round-trips" ~count:300
    (QCheck.make csv_doc_gen
       ~print:QCheck.Print.(pair (list string) (list (list string))))
    (fun (header, rows) ->
      parse_csv (Csv_out.to_string ~header ~rows) = header :: rows)

(* ------------------------------------------------------------------ *)
(* Manually-recorded logs and the approx/exact cross-check               *)

let test_manual_log_matches_attached () =
  (* Replaying the depart/inject stream through the manual API must
     yield the same accounting as Service_log.attach. *)
  let log = Service_log.create () in
  Service_log.note_arrival log ~at:0.0 1;
  Service_log.note_arrival log ~at:0.0 1;
  Service_log.note_completion log ~flow:1 ~start:0.0 ~finish:1.0 ~len:100;
  Service_log.note_completion log ~flow:1 ~start:1.0 ~finish:2.0 ~len:100;
  Service_log.note_arrival log ~at:5.0 1;
  Service_log.note_completion log ~flow:1 ~start:5.0 ~finish:6.0 ~len:100;
  (match Service_log.busy_intervals log 1 ~until:10.0 with
  | [ (a1, b1); (a2, b2) ] ->
    check_float "first opens" 0.0 a1;
    check_float "first closes" 2.0 b1;
    check_float "second opens" 5.0 a2;
    check_float "second closes" 6.0 b2
  | l -> Alcotest.fail (Printf.sprintf "expected 2 intervals, got %d" (List.length l)));
  check_float "window" 300.0 (Service_log.service log 1 ~t1:0.0 ~t2:6.0)

(* A random two-flow FIFO run, recorded through the manual API:
   arrivals at generated gaps, one fixed-rate server, service in
   arrival order. *)
let fifo_log_ops_gen =
  QCheck.Gen.(
    list_size (2 -- 60)
      (triple (1 -- 2) (map (fun n -> 100 * (1 + (n mod 10))) small_nat) (0 -- 20)))

let build_fifo_log ops =
  let cap = 100.0 in
  let clock = ref 0.0 in
  let arrivals =
    List.map
      (fun (flow, len, gap_tenths) ->
        clock := !clock +. (float_of_int gap_tenths /. 10.0);
        (!clock, flow, len))
      ops
  in
  let free = ref 0.0 in
  let completions =
    List.map
      (fun (at, flow, len) ->
        let start = Float.max at !free in
        let finish = start +. (float_of_int len /. cap) in
        free := finish;
        (finish, start, flow, len))
      arrivals
  in
  let log = Service_log.create () in
  let events =
    List.map (fun (at, flow, _) -> (at, `Arrive flow)) arrivals
    @ List.map
        (fun (finish, start, flow, len) -> (finish, `Complete (flow, start, len)))
        completions
  in
  let events =
    List.stable_sort
      (fun (a, ea) (b, eb) ->
        match compare a b with
        | 0 -> (
          match (ea, eb) with `Arrive _, `Complete _ -> -1 | `Complete _, `Arrive _ -> 1 | _ -> 0)
        | c -> c)
      events
  in
  List.iter
    (fun (at, e) ->
      match e with
      | `Arrive flow -> Service_log.note_arrival log ~at flow
      | `Complete (flow, start, len) ->
        Service_log.note_completion log ~flow ~start ~finish:at ~len)
    events;
  (log, !free)

let prop_approx_within_one_packet_of_exact =
  (* The streaming drawdown index may over- or under-shoot the exact
     supremum by at most one packet of each flow (fairness.mli). *)
  QCheck.Test.make ~name:"fairness: |approx_h - exact_h| <= lmax_f/r + lmax_m/r"
    ~count:150
    (QCheck.make fifo_log_ops_gen
       ~print:QCheck.Print.(list (triple int int int)))
    (fun ops ->
      let log, until = build_fifo_log ops in
      let lmax flow =
        List.fold_left
          (fun acc (f, len, _) ->
            if f = flow then Float.max acc (float_of_int len) else acc)
          0.0 ops
      in
      let e = Fairness.exact_h log ~f:1 ~m:2 ~r_f:1.0 ~r_m:1.0 ~until in
      let a = Fairness.approx_h log ~f:1 ~m:2 ~r_f:1.0 ~r_m:1.0 ~until in
      Float.abs (a -. e) <= lmax 1 +. lmax 2 +. 1e-9)

let test_approx_exact_agree_alternating () =
  (* Two equal-rate flows served in strict alternation from a common
     backlog: both measures are exactly one packet of normalized
     service. *)
  let log = Service_log.create () in
  for _ = 1 to 5 do
    Service_log.note_arrival log ~at:0.0 1;
    Service_log.note_arrival log ~at:0.0 2
  done;
  for k = 0 to 9 do
    let flow = if k mod 2 = 0 then 1 else 2 in
    Service_log.note_completion log ~flow ~start:(float_of_int k)
      ~finish:(float_of_int (k + 1)) ~len:100
  done;
  let e = Fairness.exact_h log ~f:1 ~m:2 ~r_f:1.0 ~r_m:1.0 ~until:10.0 in
  let a = Fairness.approx_h log ~f:1 ~m:2 ~r_f:1.0 ~r_m:1.0 ~until:10.0 in
  check_float "exact is one packet" 100.0 e;
  check_float "approx agrees" e a

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "analysis"
    [
      ( "service_log",
        [
          Alcotest.test_case "completions" `Quick test_completions_recorded;
          Alcotest.test_case "busy intervals" `Quick test_busy_intervals;
          Alcotest.test_case "open interval" `Quick test_busy_interval_still_open;
          Alcotest.test_case "window semantics" `Quick test_service_window_semantics;
          Alcotest.test_case "manual recording" `Quick test_manual_log_matches_attached;
        ] );
      ( "fairness",
        [
          Alcotest.test_case "intersect" `Quick test_intersect_intervals;
          Alcotest.test_case "alternating tight" `Quick test_exact_h_alternating_is_tight;
          Alcotest.test_case "starved flow" `Quick test_exact_h_starved_flow;
          Alcotest.test_case "no overlap" `Quick test_exact_h_no_overlap_is_zero;
          Alcotest.test_case "approx vs exact" `Quick test_approx_close_to_exact;
          Alcotest.test_case "approx/exact alternating" `Quick
            test_approx_exact_agree_alternating;
          q prop_approx_within_one_packet_of_exact;
          Alcotest.test_case "weights scale" `Quick test_weights_scale_h;
          Alcotest.test_case "throughput" `Quick test_throughput;
          Alcotest.test_case "max pairwise" `Quick test_max_pairwise;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escape" `Quick test_csv_escape;
          Alcotest.test_case "to_string" `Quick test_csv_to_string;
          Alcotest.test_case "of_series" `Quick test_csv_of_series;
          Alcotest.test_case "write roundtrip" `Quick test_csv_write_roundtrip;
          q prop_csv_roundtrip;
        ] );
    ]
