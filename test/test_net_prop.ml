(* Network-scale properties (E27, DESIGN.md §13).

   Two layers over Net_sweep.run_scenario:

   - a qcheck property: for ANY topology shape, discipline, buffer
     budget, drop policy, churn window and load — including overload
     and routes torn down mid-flight — packet conservation holds at
     every quiesce checkpoint the engine probes and exactly at the
     final drain: injected = delivered + dropped + closed, nothing
     left in flight, and every per-hop structural monitor silent;

   - directed Thm 8/9 checks on the paper's Fig. 1(a) three-host star
     and a 3-hop tandem line: the composed end-to-end bound
     EAT + Σ βⁿ + Σ τⁿ (Corollary 1 shape, per-hop β from Thm 4 with
     δ=0) holds for every delivery of every reserved CBR flow, for
     float SFQ, the fixed-point fast path and the PIFO rank program —
     and a mutant oracle that forgets any single hop's β is killed.
     On the single-flow line the bound is exactly tight (slack 0), so
     dropping a hop leaves the mutant short by that hop's full l/C:
     the kill is guaranteed, not probabilistic. *)

open Sfq_netsim
open Sfq_experiments

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Directed Thm 8/9: composed bound holds on star3 and line3           *)

let fig1a_star = Topo.Star { leaves = 3 }
let tandem = Topo.Line { hops = 3 }

let oracle_discs = [ Disc.Sfq; Disc.Sfq_fast; Disc.Pifo_sfq ]

let test_composed_bound_holds () =
  List.iter
    (fun spec ->
      List.iter
        (fun disc ->
          let s = Net_sweep.directed ~disc ~spec () in
          let o = Net_sweep.run_scenario s in
          List.iter
            (fun (v : Sfq_oracle.Monitor.violation) ->
              Alcotest.failf "%s: %s at %g: %s" s.Net_sweep.label
                v.Sfq_oracle.Monitor.monitor v.Sfq_oracle.Monitor.at
                v.Sfq_oracle.Monitor.what)
            o.Net_sweep.violations;
          check_bool
            (s.Net_sweep.label ^ ": oracle actually checked deliveries")
            true
            (o.Net_sweep.e2e_checked > 0);
          check_int (s.Net_sweep.label ^ ": no losses on an idle network") 0
            o.Net_sweep.e2e_lost;
          check_bool (s.Net_sweep.label ^ ": bound not violated (slack >= 0)") true
            (o.Net_sweep.min_slack >= 0.0);
          check_int (s.Net_sweep.label ^ ": drained") 0 o.Net_sweep.in_flight)
        oracle_discs)
    [ fig1a_star; tandem ]

(* The tightness witness behind the mutant guarantee: one reserved CBR
   flow alone on the line has sum_other = 0 at every hop, so the
   composed bound collapses to EAT + Σ l/C + Σ τ — the exact fluid
   departure time. Measured slack must be (numerically) zero. *)
let test_line_bound_exactly_tight () =
  let s = Net_sweep.directed ~disc:Disc.Sfq ~spec:tandem () in
  let o = Net_sweep.run_scenario s in
  check_bool "line3 slack is exactly zero" true
    (Float.abs o.Net_sweep.min_slack <= 1e-9)

(* Mutant kill: an oracle that forgets hop i's β term claims a bound
   short by at least l/C for that hop; on the exactly-tight line every
   delivery violates it. The hop index is seeded, and all residues are
   exercised so no single hop's service time can hide in another's. *)
let test_mutant_oracle_killed () =
  let nhops = 3 in
  let root = 0x5eed in
  for i = 0 to nhops - 1 do
    let skip = Sfq_par.Seed.derive ~root ~index:i mod nhops in
    List.iter
      (fun disc ->
        let s = Net_sweep.directed ~disc ~skip_hop:skip ~spec:tandem () in
        let o = Net_sweep.run_scenario s in
        let e2e =
          List.filter
            (fun (v : Sfq_oracle.Monitor.violation) ->
              v.Sfq_oracle.Monitor.monitor = "e2e-delay")
            o.Net_sweep.violations
        in
        check_bool
          (Printf.sprintf "%s skip=%d: mutant reported a violation" s.Net_sweep.label
             skip)
          true (e2e <> []))
      oracle_discs
  done;
  (* and on the contended star: three simultaneous CBR flows make the
     hub serve the last one a full backlog late, past any skip-mutant
     bound *)
  let s = Net_sweep.directed ~disc:Disc.Sfq ~skip_hop:1 ~spec:fig1a_star () in
  let o = Net_sweep.run_scenario s in
  check_bool "star3 skip=1: mutant reported a violation" true
    (List.exists
       (fun (v : Sfq_oracle.Monitor.violation) ->
         v.Sfq_oracle.Monitor.monitor = "e2e-delay")
       o.Net_sweep.violations)

(* ------------------------------------------------------------------ *)
(* QCheck: conservation over random topologies x disciplines x buffers *)

let q test =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x2e7 |])
    ~speed_level:`Quick test

type net_case = {
  c_spec : Topo.spec;
  c_disc : Disc.spec;
  c_buffer : Sfq_base.Buffered.config option;
  c_churn : bool;
  c_flows : int;
  c_window : int;
  c_pkts : int;
  c_load : float;
  c_seed : int;
}

let spec_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Topo.Star { leaves = n }) (int_range 1 6);
        map (fun n -> Topo.Line { hops = n }) (int_range 1 4);
        map
          (fun (a, d) -> Topo.Tree { arity = a; depth = d })
          (pair (int_range 2 3) (int_range 1 2));
        map
          (fun (l, r) -> Topo.Dumbbell { left = l; right = r })
          (pair (int_range 1 3) (int_range 1 3));
      ])

(* Every scheduler family the netsim grid runs, including both bound
   kinds and the no-oracle disciplines. *)
let disc_gen =
  QCheck.Gen.oneofl
    [
      Disc.Sfq;
      Disc.Scfq;
      Disc.Sfq_fast;
      Disc.Scfq_fast;
      Disc.Pifo_sfq;
      Disc.Pifo_scfq;
      Disc.Drr { quantum = 8192.0 };
      Disc.Fifo;
    ]

let buffer_gen =
  QCheck.Gen.(
    let policy =
      oneofl Sfq_base.Buffered.[ Drop_tail; Drop_front; Longest_queue ]
    in
    opt
      (map
         (fun (pf, (ag, policy)) ->
           Sfq_base.Buffered.config ~per_flow:pf ~aggregate:ag ~policy ())
         (pair (int_range 1 6) (pair (int_range 4 48) policy))))

let case_gen =
  QCheck.Gen.(
    map
      (fun (spec, disc, buffer, (churn, flows, window), (pkts, load, seed)) ->
        {
          c_spec = spec;
          c_disc = disc;
          c_buffer = buffer;
          c_churn = churn;
          c_flows = flows;
          c_window = window;
          c_pkts = pkts;
          c_load = load;
          c_seed = seed;
        })
      (tup5 spec_gen disc_gen buffer_gen
         (tup3 bool (int_range 4 60) (int_range 2 12))
         (tup3 (int_range 1 4)
            (map (fun l -> float_of_int l /. 8.0) (int_range 2 12))
            (int_range 0 0xFFFF))))

let print_case c =
  Printf.sprintf "%s/%s buffer=%s churn=%b flows=%d window=%d pkts=%d load=%g seed=%d"
    (Topo.spec_name c.c_spec) (Disc.name c.c_disc)
    (match c.c_buffer with None -> "none" | Some _ -> "finite")
    c.c_churn c.c_flows c.c_window c.c_pkts c.c_load c.c_seed

(* The engine probes injected = delivered + dropped + closed + in-flight
   at four mid-run quiesce checkpoints and after the final drain (any
   breach lands in [violations] as "net-conservation"); per-hop monitors
   check per-server conservation and flow-FIFO; the outcome repeats the
   final identity. All of it must hold for every random cell. *)
let prop_conservation =
  QCheck.Test.make ~count:60
    ~name:"net conservation: injected = delivered + dropped + closed at every quiesce"
    (QCheck.make ~print:print_case case_gen)
    (fun c ->
      let s =
        Net_sweep.scenario
          ~label:(Printf.sprintf "prop/%s" (print_case c))
          ~spec:c.c_spec ~disc:c.c_disc ?buffer:c.c_buffer ~churn:c.c_churn
          ~flows:c.c_flows ~window:c.c_window ~pkts_per_flow:c.c_pkts
          ~load:c.c_load ~seed:c.c_seed ()
      in
      let o = Net_sweep.run_scenario s in
      List.iter
        (fun (v : Sfq_oracle.Monitor.violation) ->
          QCheck.Test.fail_reportf "%s: %s at %g: %s" s.Net_sweep.label
            v.Sfq_oracle.Monitor.monitor v.Sfq_oracle.Monitor.at
            v.Sfq_oracle.Monitor.what)
        o.Net_sweep.violations;
      o.Net_sweep.in_flight = 0
      && o.Net_sweep.injected
         = o.Net_sweep.delivered + o.Net_sweep.dropped + o.Net_sweep.closed)

(* Drops must actually occur across the generated space — a conservation
   law that never sees a drop is vacuous on the dropped term. *)
let test_buffered_cells_do_drop () =
  let s =
    Net_sweep.scenario ~label:"prop/drop-witness"
      ~spec:(Topo.Star { leaves = 2 })
      ~disc:Disc.Sfq
      ~buffer:
        (Sfq_base.Buffered.config ~per_flow:2 ~aggregate:4
           ~policy:Sfq_base.Buffered.Drop_tail ())
      ~flows:24 ~window:8 ~pkts_per_flow:4 ~load:1.5 ~seed:7 ()
  in
  let o = Net_sweep.run_scenario s in
  check_int "drop-witness: no violations" 0 (List.length o.Net_sweep.violations);
  check_bool "drop-witness: finite buffers dropped packets" true
    (o.Net_sweep.dropped > 0);
  check_int "drop-witness: conservation with drops" o.Net_sweep.injected
    (o.Net_sweep.delivered + o.Net_sweep.dropped + o.Net_sweep.closed)

let () =
  Alcotest.run "net_prop"
    [
      ( "thm8-9",
        [
          Alcotest.test_case "composed bound holds (star3, line3)" `Quick
            test_composed_bound_holds;
          Alcotest.test_case "line bound exactly tight" `Quick
            test_line_bound_exactly_tight;
          Alcotest.test_case "hop-forgetting mutant killed" `Quick
            test_mutant_oracle_killed;
        ] );
      ( "conservation",
        [
          q prop_conservation;
          Alcotest.test_case "finite buffers exercise drops" `Quick
            test_buffered_cells_do_drop;
        ] );
    ]
