(* The schedule-replay universality suite (E28, DESIGN.md §14).

   Single hop: recording any shipped discipline on a frozen workload
   and replaying the arrivals under LSTF (deadline = recorded output
   time, residual = len/C) must reproduce the schedule
   packet-for-packet — the ranks are the recorded start times, distinct
   and increasing, so this is a theorem and any divergence is a harness
   or scheduler bug. Multi-hop: the UPS criterion (no packet later than
   recorded) over the E27 grid, SFQ as the diverging negative control.
   Seeded mutants (lstf-wrong-slack, lstf-priority-tie) must die at
   every domain count, and the Lstf discipline's lifecycle semantics
   (monotone rank floor through evict, forgotten at close) get the same
   battery as the PR 5 robustness suite. *)

open Sfq_base
open Sfq_oracle
module Lstf = Sfq_sched.Lstf
module Tag_queue = Sfq_sched.Tag_queue
module Net_sweep = Sfq_experiments.Net_sweep
module Lr = Sfq_experiments.Lstf_replay
module Disc = Sfq_experiments.Disc
module Topo = Sfq_netsim.Topo
module Sim = Sfq_netsim.Sim
module Pool = Sfq_par.Pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let is_replayed = function Replay.Replayed _ -> true | Replay.Diverged _ -> false

let domain_counts =
  let base = [ 1; 2; 4; 8 ] in
  match Sys.getenv_opt "SFQ_DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 && not (List.mem n base) -> base @ [ n ]
    | _ -> base)
  | None -> base

let assert_identical ~what digests =
  match digests with
  | [] -> ()
  | (_, reference) :: rest ->
    List.iter
      (fun (domains, d) ->
        if not (String.equal d reference) then
          Alcotest.failf "%s: digest at %d domains differs from serial run" what
            domains)
      rest

(* ------------------------------------------------------------------ *)
(* Single-hop record/replay                                             *)

let arr at flow len = { Workload.at; flow; len; rate = None }

let workload arrivals =
  {
    Workload.capacity = 1000.0;
    weights = [ (0, 250.0); (1, 250.0); (2, 250.0) ];
    arrivals;
    reweights = [];
    churn = [];
    rate_changes = [];
    buffer = None;
  }

let burst =
  workload
    [
      arr 0.0 0 2000;
      arr 0.0 1 1000;
      arr 0.1 2 1500;
      arr 2.0 0 500;
      arr 2.0 1 500;
      arr 6.0 2 1000;
    ]

let mk disc (w : Workload.t) () =
  Disc.make disc (Weights.of_list ~default:1.0 w.Workload.weights)

let test_roundtrip () =
  let sch = Replay.record ~sched:(mk Disc.Sfq burst ()) burst in
  let order = Replay.order sch in
  check_int "every packet recorded" (List.length burst.Workload.arrivals)
    (Array.length order);
  Alcotest.(check (float 0.0)) "capacity kept" 1000.0 (Replay.capacity sch);
  Array.iter
    (fun k ->
      match Replay.output_time sch k with
      | Some o -> check_bool "output time positive" true (o > 0.0)
      | None -> Alcotest.fail "recorded packet has no output time")
    order;
  (* output times are distinct and increasing in departure order — the
     premise of the single-hop replay argument *)
  let times = Array.map (fun k -> Option.get (Replay.output_time sch k)) order in
  Array.iteri
    (fun i o ->
      if i > 0 then check_bool "strictly increasing" true (o > times.(i - 1)))
    times;
  match Replay.replay_lstf sch burst with
  | Replay.Replayed n -> check_int "all packets replayed" (Array.length order) n
  | Replay.Diverged _ as v ->
    Alcotest.failf "LSTF failed to replay SFQ: %s" (Replay.verdict_digest v)

(* Reflexivity, directed: recording a discipline and re-running the
   same arrivals under a fresh instance of the same discipline is the
   degenerate replay — identical departure schedule. *)
let test_reflexive_directed () =
  List.iter
    (fun disc ->
      let make = mk disc burst in
      let sch = Replay.record ~sched:(make ()) burst in
      match Replay.replay ~sched:(make ()) sch burst with
      | Replay.Replayed _ -> ()
      | Replay.Diverged _ as v ->
        Alcotest.failf "%s not reflexive: %s" (Disc.name disc)
          (Replay.verdict_digest v))
    [ Disc.Sfq; Disc.Fifo; Disc.Drr { quantum = 8192.0 } ]

let test_workload_guards () =
  let reject what w =
    match Replay.record ~sched:(mk Disc.Sfq w ()) w with
    | _ -> Alcotest.failf "%s workload must be rejected" what
    | exception Invalid_argument _ -> ()
  in
  reject "churned"
    { burst with Workload.churn = [ { Workload.at = 1.0; flow = 0 } ] };
  reject "rate-fluctuating"
    {
      burst with
      Workload.rate_changes = [ { Workload.at = 1.0; capacity = 500.0 } ];
    };
  reject "buffered"
    {
      burst with
      Workload.buffer =
        Some
          {
            Workload.per_flow = Some 2;
            aggregate = None;
            policy = Buffered.Drop_tail;
          };
    }

let test_unknown_packet_rejected () =
  (* a schedule missing one of the workload's packets cannot assign it
     a deadline: replay must refuse loudly, not invent a rank *)
  let sch =
    Replay.of_table ~capacity:1000.0
      [ ({ Replay.flow = 0; seq = 1 }, 2.0); ({ Replay.flow = 1; seq = 1 }, 3.0) ]
  in
  let w = workload [ arr 0.0 0 2000; arr 0.0 1 1000; arr 0.1 2 1500 ] in
  match Replay.replay_lstf sch w with
  | _ -> Alcotest.fail "packet absent from the schedule must raise"
  | exception Invalid_argument _ -> ()

let test_suite_cells_replayed () =
  List.iter
    (fun (c : Replay.cell) ->
      match c.Replay.run () with
      | Replay.Replayed _ -> ()
      | Replay.Diverged _ as v ->
        Alcotest.failf "%s: %s" c.Replay.label (Replay.verdict_digest v))
    (Replay.suite_cells ~limit:3 ())

(* ------------------------------------------------------------------ *)
(* Seeded-mutant kills, at every domain count                           *)

let test_directed_kills_all_domains () =
  let tasks = Array.of_list (Replay.directed_kills ()) in
  let digests =
    List.map
      (fun domains ->
        let rows =
          Pool.run ~domains
            ~f:(fun _ (m, label, thunk) ->
              (* audit (parallel safety): each thunk builds its
                 schedulers and schedule inside the call *)
              let correct, mutant = thunk () in
              if not (is_replayed correct) then
                Alcotest.failf "%s at %d domains: correct LSTF diverged: %s"
                  label domains
                  (Replay.verdict_digest correct);
              if is_replayed mutant then
                Alcotest.failf "%s at %d domains: mutant %s survived replay"
                  label domains (Replay.mutant_name m);
              Printf.sprintf "%s correct=%s mutant=%s" label
                (Replay.verdict_digest correct)
                (Replay.verdict_digest mutant))
            tasks
        in
        (domains, String.concat "\n" (Array.to_list rows)))
      domain_counts
  in
  assert_identical ~what:"directed kills" digests

let star4_sfq_cell () =
  match
    List.find_opt
      (fun (c : Net_sweep.scenario) -> c.Net_sweep.label = "star4/SFQ/r0")
      (Net_sweep.default_cells ())
  with
  | Some c -> c
  | None -> Alcotest.fail "star4/SFQ/r0 missing from the E27 grid"

let test_net_wrong_slack_kill_all_domains () =
  let cell = star4_sfq_cell () in
  let digests =
    List.map
      (fun domains ->
        let rows =
          Pool.run ~domains
            ~f:(fun _ s ->
              let ns, _ = Net_sweep.record_net s in
              let correct = Net_sweep.replay_net ns Net_sweep.Under_lstf in
              let mutant =
                Net_sweep.replay_net ns
                  (Net_sweep.Under_mutant Replay.Wrong_slack)
              in
              (match correct with
              | Net_sweep.Late _ ->
                Alcotest.failf "correct net LSTF late at %d domains: %s" domains
                  (Net_sweep.net_verdict_digest correct)
              | Net_sweep.Exact _ | Net_sweep.On_time _ -> ());
              (match mutant with
              | Net_sweep.Late _ -> ()
              | v ->
                Alcotest.failf "net wrong-slack survived at %d domains: %s"
                  domains
                  (Net_sweep.net_verdict_digest v));
              Net_sweep.net_verdict_digest correct ^ " | "
              ^ Net_sweep.net_verdict_digest mutant)
            [| cell |]
        in
        (domains, rows.(0)))
      domain_counts
  in
  assert_identical ~what:"net wrong-slack kill" digests

(* ------------------------------------------------------------------ *)
(* Multi-hop grid, negative control, E28 rows                           *)

let test_e28_rows () =
  let r = Lr.run ~limit:1 () in
  let all_ok what rows =
    List.iter
      (fun (x : Lr.row) ->
        if not x.Lr.ok then Alcotest.failf "%s %s: %s" what x.Lr.cell x.Lr.verdict)
      rows
  in
  all_ok "single" r.Lr.single;
  all_ok "net" r.Lr.net;
  all_ok "kill" r.Lr.kills;
  check_int "grid covers every (topology x discipline) cell" 20
    (List.length r.Lr.net);
  (* the negative control must actually diverge somewhere: SFQ is not
     universal, which is what makes the net rows evidence *)
  check_bool "SFQ delivers late on at least one DRR recording" true
    (List.exists (fun (x : Lr.row) -> x.Lr.ok) r.Lr.control)

let test_record_net_guards () =
  let churned =
    Net_sweep.scenario ~label:"guard/churn" ~spec:(Topo.Star { leaves = 3 })
      ~disc:Disc.Sfq ~churn:true ()
  in
  (match Net_sweep.record_net churned with
  | _ -> Alcotest.fail "churned scenario must be rejected"
  | exception Invalid_argument _ -> ());
  let buffered =
    Net_sweep.scenario ~label:"guard/buffer" ~spec:(Topo.Star { leaves = 3 })
      ~disc:Disc.Sfq
      ~buffer:
        (Buffered.config ~per_flow:4 ~aggregate:16 ~policy:Buffered.Drop_tail ())
      ()
  in
  match Net_sweep.record_net buffered with
  | _ -> Alcotest.fail "buffered scenario must be rejected"
  | exception Invalid_argument _ -> ()

let test_replay_exact_and_hash_stable () =
  let cell = star4_sfq_cell () in
  let ns1, o1 = Net_sweep.record_net cell in
  let ns2, o2 = Net_sweep.record_net cell in
  check_bool "recording is deterministic" true
    (Net_sweep.net_schedule_hash ns1 = Net_sweep.net_schedule_hash ns2
    && o1.Net_sweep.order_hash = o2.Net_sweep.order_hash);
  check_bool "recorded scenario kept" true
    ((Net_sweep.net_schedule_scenario ns1).Net_sweep.label = "star4/SFQ/r0");
  check_bool "delivery order non-empty" true
    (Array.length (Net_sweep.net_schedule_order ns1) > 0);
  (* same-discipline re-run is the degenerate replay: exact order *)
  (match Net_sweep.replay_net ns1 (Net_sweep.Under_disc Disc.Sfq) with
  | Net_sweep.Exact n ->
    check_int "every delivery reproduced"
      (Array.length (Net_sweep.net_schedule_order ns1))
      n
  | v ->
    Alcotest.failf "SFQ not reflexive on its own recording: %s"
      (Net_sweep.net_verdict_digest v));
  match Net_sweep.replay_net ns1 Net_sweep.Under_lstf with
  | Net_sweep.Exact _ -> ()
  | v ->
    Alcotest.failf "LSTF does not replay star4/SFQ exactly: %s"
      (Net_sweep.net_verdict_digest v)

let test_residuals_route_aware () =
  (* star: residual at an access link covers its own tx + prop plus the
     core's; the core link covers only itself. Creation order is
     access links first (leaf order), core last. *)
  let topo =
    Topo.build (Sim.create ()) (Topo.Star { leaves = 2 }) ~access_rate:500.0
      ~core_rate:1000.0
      ~mk_sched:(fun ~rate:_ -> Sfq_sched.Fifo.sched (Sfq_sched.Fifo.create ()))
      ~prop_delay:0.5 ()
  in
  let r = Topo.residuals topo ~len:1000 in
  check_int "one residual per link" 3 (Array.length r);
  Alcotest.(check (float 1e-9)) "core: own tx + prop" 1.5 r.(2);
  Alcotest.(check (float 1e-9)) "access: own + downstream" 4.0 r.(0);
  Alcotest.(check (float 1e-9)) "access links symmetric" r.(0) r.(1)

(* ------------------------------------------------------------------ *)
(* QCheck: replay is reflexive on random network cells                  *)

let q test =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x28 |])
    ~speed_level:`Quick test

let reflexive_specs =
  [|
    Topo.Star { leaves = 3 };
    Topo.Line { hops = 2 };
    Topo.Tree { arity = 2; depth = 2 };
    Topo.Dumbbell { left = 2; right = 2 };
  |]

let reflexive_discs =
  [|
    Disc.Sfq;
    Disc.Scfq;
    Disc.Sfq_fast;
    Disc.Pifo_sfq;
    Disc.Drr { quantum = 8192.0 };
  |]

let reflexive_gen =
  QCheck.Gen.(
    quad
      (int_range 0 (Array.length reflexive_specs - 1))
      (int_range 0 (Array.length reflexive_discs - 1))
      bool (int_range 0 0xffff))

let print_reflexive (si, di, churn, seed) =
  Printf.sprintf "%s/%s churn=%b seed=%#x"
    (Topo.spec_name reflexive_specs.(si))
    (Disc.name reflexive_discs.(di))
    churn seed

let prop_net_replay_reflexive =
  QCheck.Test.make ~count:12
    ~name:"same-discipline replay reproduces the recording"
    (QCheck.make ~print:print_reflexive reflexive_gen)
    (fun (si, di, churn, seed) ->
      let spec = reflexive_specs.(si) and disc = reflexive_discs.(di) in
      let s =
        Net_sweep.scenario
          ~label:(Printf.sprintf "reflexive/%s" (Topo.spec_name spec))
          ~spec ~disc ~churn ~seed ()
      in
      if churn then
        (* churn is outside the replay guards: reflexivity there is
           delivery-order determinism of the run itself *)
        (Net_sweep.run_scenario s).Net_sweep.order_hash
        = (Net_sweep.run_scenario s).Net_sweep.order_hash
      else
        let ns, _ = Net_sweep.record_net s in
        match Net_sweep.replay_net ns (Net_sweep.Under_disc disc) with
        | Net_sweep.Exact _ -> true
        | v ->
          Printf.eprintf "reflexive replay: %s\n"
            (Net_sweep.net_verdict_digest v);
          false)

(* ------------------------------------------------------------------ *)
(* Lstf lifecycle: the PR 5 battery (tags never roll back; reopened
   flows re-enter correctly)                                            *)

(* deadline rides in [born], so each packet's target is explicit *)
let dpkt flow seq deadline = Packet.make ~flow ~seq ~len:1000 ~born:deadline ()
let mk_lstf () = Lstf.create ~deadline:(fun p -> p.Packet.born) ()

let test_floor_clamps_undercutting_deadline () =
  let t = mk_lstf () in
  Lstf.enqueue t ~now:0.0 (dpkt 1 1 10.0);
  check_bool "floor tracks the last rank" true (Lstf.last_rank t 1 = Some 10.0);
  Alcotest.(check (float 0.0)) "undercutting deadline clamps to the floor" 10.0
    (Lstf.rank t (dpkt 1 2 5.0));
  Lstf.enqueue t ~now:0.0 (dpkt 1 2 5.0);
  check_bool "floor never rolls back" true (Lstf.last_rank t 1 = Some 10.0);
  (* a later deadline raises the floor *)
  Lstf.enqueue t ~now:0.0 (dpkt 1 3 12.0);
  check_bool "floor advances" true (Lstf.last_rank t 1 = Some 12.0);
  (* per-flow FIFO survives the non-monotone deadlines *)
  let order =
    List.map (fun p -> p.Packet.seq) (Sched.drain (Lstf.sched t) ~now:0.0)
  in
  check_bool "per-flow FIFO" true (order = [ 1; 2; 3 ])

let test_evict_keeps_floor () =
  let t = mk_lstf () in
  Lstf.enqueue t ~now:0.0 (dpkt 1 1 10.0);
  Lstf.enqueue t ~now:0.0 (dpkt 1 2 20.0);
  (match Lstf.evict t Sched.Newest 1 with
  | Some p -> check_int "newest evicted" 2 p.Packet.seq
  | None -> Alcotest.fail "evict found nothing");
  (* the evicted packet's rank stays charged: tags never roll back *)
  check_bool "floor survives eviction" true (Lstf.last_rank t 1 = Some 20.0);
  Alcotest.(check (float 0.0)) "next packet enters at the floor" 20.0
    (Lstf.rank t (dpkt 1 3 5.0));
  match Lstf.evict t Sched.Oldest 1 with
  | Some p ->
    check_int "oldest evicted" 1 p.Packet.seq;
    check_bool "floor survives emptying the flow" true
      (Lstf.last_rank t 1 = Some 20.0)
  | None -> Alcotest.fail "evict found nothing"

let test_close_forgets_floor () =
  let t = mk_lstf () in
  Lstf.enqueue t ~now:0.0 (dpkt 1 1 10.0);
  Lstf.enqueue t ~now:0.0 (dpkt 1 2 11.0);
  Lstf.enqueue t ~now:0.0 (dpkt 2 1 5.0);
  let flushed = Lstf.close_flow t 1 in
  check_bool "flushed oldest first" true
    (List.map (fun p -> p.Packet.seq) flushed = [ 1; 2 ]);
  check_bool "floor forgotten" true (Lstf.last_rank t 1 = None);
  (* the reopened flow re-enters on raw deadlines: 3.0 now beats flow
     2's 5.0, where the stale floor (10.0) would have lost *)
  Lstf.enqueue t ~now:0.0 (dpkt 1 5 3.0);
  check_bool "reopened floor is the raw rank" true
    (Lstf.last_rank t 1 = Some 3.0);
  match Lstf.dequeue t ~now:0.0 with
  | Some p -> check_int "reopened flow serves first" 1 p.Packet.flow
  | None -> Alcotest.fail "dequeue found nothing"

let test_stale_floor_before_close_loses () =
  (* the other half of the reopen contract: without close_flow, the
     floor from deadline 10 makes the late packet rank 10 and flow 2
     (rank 5) wins *)
  let t = mk_lstf () in
  Lstf.enqueue t ~now:0.0 (dpkt 1 1 10.0);
  ignore (Lstf.dequeue t ~now:0.0);
  Lstf.enqueue t ~now:0.0 (dpkt 2 1 5.0);
  Lstf.enqueue t ~now:0.0 (dpkt 1 2 3.0);
  match Lstf.dequeue t ~now:0.0 with
  | Some p -> check_int "clamped flow waits" 2 p.Packet.flow
  | None -> Alcotest.fail "dequeue found nothing"

let test_residual_and_ties () =
  (* rank = deadline − residual; equal ranks break FIFO by default and
     by the tie override when given *)
  let mk ?tie () =
    Lstf.create ?tie
      ~residual:(fun p -> float_of_int p.Packet.len /. 1000.0)
      ~deadline:(fun p -> p.Packet.born)
      ()
  in
  let fill t =
    (* ranks: 10 − 1 = 9 and 11 − 2 = 9 — tied *)
    Lstf.enqueue t ~now:0.0 (Packet.make ~flow:1 ~seq:1 ~len:1000 ~born:10.0 ());
    Lstf.enqueue t ~now:0.0 (Packet.make ~flow:2 ~seq:1 ~len:2000 ~born:11.0 ())
  in
  let t = mk () in
  fill t;
  (match Lstf.dequeue t ~now:0.0 with
  | Some p -> check_int "FIFO tie-break" 1 p.Packet.flow
  | None -> Alcotest.fail "dequeue found nothing");
  let t2 = mk ~tie:(Tag_queue.High_rate (fun f -> float_of_int f)) () in
  fill t2;
  match Lstf.dequeue t2 ~now:0.0 with
  | Some p -> check_int "tie override prefers the higher key" 2 p.Packet.flow
  | None -> Alcotest.fail "dequeue found nothing"

let test_sched_view () =
  let t = mk_lstf () in
  let s = Lstf.sched t in
  check_bool "named lstf" true (s.Sched.name = "lstf");
  s.Sched.enqueue ~now:0.0 (dpkt 3 1 4.0);
  s.Sched.enqueue ~now:0.0 (dpkt 3 2 6.0);
  check_int "size" 2 (s.Sched.size ());
  check_int "backlog" 2 (s.Sched.backlog 3);
  check_int "peek is the least rank" 1 (Option.get (Lstf.peek t)).Packet.seq;
  ignore (s.Sched.close_flow ~now:0.0 3);
  check_int "close flushes" 0 (s.Sched.size ())

(* Random op soup: whatever the deadline pattern, per-flow service
   stays FIFO within a close_flow epoch and nothing raises — the rank
   floor is doing its job (the Flow_heap monotone-tag invariant would
   abort the run if it were not). *)
let lstf_ops_gen =
  QCheck.Gen.(
    list_size (int_range 10 120)
      (triple (int_range 0 3) (int_range 0 99) (int_range 0 5)))

let print_lstf_ops ops =
  String.concat ";"
    (List.map (fun (f, d, k) -> Printf.sprintf "(%d,%d,%d)" f d k) ops)

let prop_lifecycle_soup =
  QCheck.Test.make ~count:200
    ~name:"per-flow FIFO within each epoch under op soup"
    (QCheck.make ~print:print_lstf_ops lstf_ops_gen)
    (fun ops ->
      let t = mk_lstf () in
      let seqs = Array.make 4 0 in
      let epoch = Array.make 4 0 in
      let served = ref [] in
      (* stamp the flow's close epoch at service time: close flushes
         the whole queue, so a served packet always belongs to its
         flow's current epoch *)
      let serve (p : Packet.t) =
        served :=
          (p.Packet.flow, epoch.(p.Packet.flow), p.Packet.seq) :: !served
      in
      List.iter
        (fun (f, d, k) ->
          match k with
          | 0 | 1 | 2 ->
            seqs.(f) <- seqs.(f) + 1;
            Lstf.enqueue t ~now:0.0 (dpkt f seqs.(f) (float_of_int d))
          | 3 -> (
            match Lstf.dequeue t ~now:0.0 with Some p -> serve p | None -> ())
          | 4 ->
            ignore
              (Lstf.evict t
                 (if d mod 2 = 0 then Sched.Oldest else Sched.Newest)
                 f)
          | _ ->
            ignore (Lstf.close_flow t f);
            (* a reopened flow restarts its seq space *)
            epoch.(f) <- epoch.(f) + 1;
            seqs.(f) <- 0)
        ops;
      List.iter serve (Sched.drain (Lstf.sched t) ~now:0.0);
      let last = Hashtbl.create 16 in
      List.for_all
        (fun (f, e, seq) ->
          (* eviction only removes packets, so the surviving seqs of
             one (flow, epoch) must still be served increasing *)
          let prev = Option.value ~default:0 (Hashtbl.find_opt last (f, e)) in
          Hashtbl.replace last (f, e) seq;
          seq > prev)
        (List.rev !served))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "replay"
    [
      ( "single-hop",
        [
          Alcotest.test_case "record/replay round trip" `Quick test_roundtrip;
          Alcotest.test_case "reflexive on sfq/fifo/drr" `Quick
            test_reflexive_directed;
          Alcotest.test_case "churn/buffer/rate-fluctuation rejected" `Quick
            test_workload_guards;
          Alcotest.test_case "packet absent from schedule raises" `Quick
            test_unknown_packet_rejected;
          Alcotest.test_case "every discipline replays on the theorem pool"
            `Quick test_suite_cells_replayed;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "directed kills at 1/2/4/8 domains" `Quick
            test_directed_kills_all_domains;
          Alcotest.test_case "net wrong-slack kill at 1/2/4/8 domains" `Quick
            test_net_wrong_slack_kill_all_domains;
        ] );
      ( "network",
        [
          Alcotest.test_case "E28 rows: grid replays, control diverges" `Quick
            test_e28_rows;
          Alcotest.test_case "record_net guards churn and buffers" `Quick
            test_record_net_guards;
          Alcotest.test_case "star4 recording: exact replay, stable hash" `Quick
            test_replay_exact_and_hash_stable;
          Alcotest.test_case "Topo.residuals are route-aware" `Quick
            test_residuals_route_aware;
          q prop_net_replay_reflexive;
        ] );
      ( "lstf-lifecycle",
        [
          Alcotest.test_case "floor clamps undercutting deadlines" `Quick
            test_floor_clamps_undercutting_deadline;
          Alcotest.test_case "evict keeps the floor charged" `Quick
            test_evict_keeps_floor;
          Alcotest.test_case "close forgets the floor; reopen is raw" `Quick
            test_close_forgets_floor;
          Alcotest.test_case "stale floor loses until closed" `Quick
            test_stale_floor_before_close_loses;
          Alcotest.test_case "residual ranks and tie orders" `Quick
            test_residual_and_ties;
          Alcotest.test_case "sched view" `Quick test_sched_view;
          q prop_lifecycle_soup;
        ] );
    ]
