(* The programmable-scheduler runtime, held to the hand-written
   originals: every Programs rank program runs the same dyadic
   scenarios as its frozen counterpart and must return the {e same
   physical packets} in the same order from every dequeue, evict and
   close; outcome digests must agree over the frozen theorem pool at
   1/2/4/8 domains; the runtime core itself is modelled against a
   naive sorted list under qcheck; the unshaped hot path must not
   allocate in steady state; and user ranks must saturate at the Tag
   rail, never wrap. *)

open Sfq_base
module Rng = Sfq_util.Rng
module Tag = Sfq_fastpath.Tag
module Tag_queue = Sfq_sched.Tag_queue
module Sfq = Sfq_core.Sfq
module Scfq = Sfq_sched.Scfq
module Vc = Sfq_sched.Virtual_clock
module Edd = Sfq_sched.Delay_edd
module Fqs = Sfq_sched.Fqs
module Wf2q = Sfq_sched.Wf2q
module Hsfq = Sfq_core.Hsfq
module Rank_program = Sfq_pifo.Rank_program
module Pifo = Sfq_pifo.Pifo_sched
module Programs = Sfq_pifo.Programs
module Ptree = Sfq_pifo.Pifo_tree
module O = Sfq_oracle

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

(* ------------------------------------------------------------------ *)
(* Dyadic differential scenarios (the fast-path generator, same op
   mix: weights and rate overrides from 100·2^k, lengths multiples of
   100, clocks in quarter steps — every tag arithmetic step is exact
   in 20 fractional bits, so the ports promise packet-for-packet
   identity with the float originals).                                  *)

let dyadic_rates = [| 100.0; 200.0; 400.0; 800.0; 1600.0; 3200.0 |]

type action =
  | Enq of Packet.t
  | Deq
  | Evict of Sched.victim * int
  | Close of int

let gen_scenario seed =
  let r = Rng.create seed in
  let nflows = 1 + Rng.int r 4 in
  let weights =
    List.init nflows (fun f -> (f, dyadic_rates.(Rng.int r (Array.length dyadic_rates))))
  in
  let seqs = Array.make nflows 0 in
  let now = ref 0.0 in
  let nops = 40 + Rng.int r 120 in
  let ops = ref [] in
  for _ = 1 to nops do
    now := !now +. (0.25 *. float_of_int (Rng.int r 5));
    let t = !now in
    let a =
      let roll = Rng.int r 100 in
      if roll < 55 then begin
        let f = Rng.int r nflows in
        seqs.(f) <- seqs.(f) + 1;
        let len = 100 * (1 + Rng.int r 15) in
        let rate =
          if Rng.int r 4 = 0 then
            Some dyadic_rates.(Rng.int r (Array.length dyadic_rates))
          else None
        in
        Enq (Packet.make ?rate ~flow:f ~seq:seqs.(f) ~len ~born:t ())
      end
      else if roll < 85 then Deq
      else if roll < 93 then
        Evict ((if Rng.bool r then Sched.Oldest else Sched.Newest), Rng.int r nflows)
      else Close (Rng.int r nflows)
    in
    ops := (t, a) :: !ops
  done;
  (weights, List.rev !ops, !now)

let pkt_str = function
  | None -> "None"
  | Some p -> Printf.sprintf "flow %d seq %d len %d" p.Packet.flow p.Packet.seq p.Packet.len

let popt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some p, Some q -> p == q
  | _ -> false

(* Both schedulers see the same physical packets, so equivalence is
   physical equality of every dequeue/evict/close result. *)
let run_differential ~name mk_float mk_pifo (weights, ops, final) =
  let w = Weights.of_list ~default:1.0 weights in
  let a = mk_float w in
  let b = mk_pifo w in
  List.iteri
    (fun i (now, action) ->
      match action with
      | Enq p ->
        a.Sched.enqueue ~now p;
        b.Sched.enqueue ~now p
      | Deq ->
        let x = a.Sched.dequeue ~now in
        let y = b.Sched.dequeue ~now in
        if not (popt_equal x y) then
          Alcotest.failf "%s: op %d dequeue at %g: float %s, pifo %s" name i now
            (pkt_str x) (pkt_str y)
      | Evict (v, f) ->
        let x = a.Sched.evict ~now v f in
        let y = b.Sched.evict ~now v f in
        if not (popt_equal x y) then
          Alcotest.failf "%s: op %d evict flow %d: float %s, pifo %s" name i f
            (pkt_str x) (pkt_str y)
      | Close f ->
        let x = a.Sched.close_flow ~now f in
        let y = b.Sched.close_flow ~now f in
        if List.length x <> List.length y || not (List.for_all2 ( == ) x y) then
          Alcotest.failf "%s: op %d close flow %d: %d vs %d packets (or order differs)"
            name i f (List.length x) (List.length y))
    ops;
  check_int (name ^ ": residual backlog") (a.Sched.size ()) (b.Sched.size ());
  let da = Sched.drain a ~now:final in
  let db = Sched.drain b ~now:final in
  if List.length da <> List.length db || not (List.for_all2 ( == ) da db) then
    Alcotest.failf "%s: final drain order diverges" name

let tie_of w = function
  | `Arrival -> Tag_queue.Arrival
  | `Low -> Tag_queue.Low_rate (Weights.get w)
  | `High -> Tag_queue.High_rate (Weights.get w)

let tie_name = function `Arrival -> "arrival" | `Low -> "low" | `High -> "high"
let ties = [ `Arrival; `Low; `High ]
let pifo ?tie prog = Pifo.sched (Pifo.create ?tie prog)

let test_sfq_program_differential () =
  List.iter
    (fun tie ->
      List.iter
        (fun (bname, busy) ->
          for seed = 1 to 20 do
            let name = Printf.sprintf "sfq[%s/%s] seed %d" (tie_name tie) bname seed in
            run_differential ~name
              (fun w -> Sfq.sched (Sfq.create ~tie:(tie_of w tie) ~busy_rule:busy w))
              (fun w -> pifo ~tie:(tie_of w tie) (Programs.sfq ~busy_rule:busy w))
              (gen_scenario (seed * 6101))
          done)
        [ ("idle_poll", Sfq.Idle_poll); ("on_empty", Sfq.On_empty) ])
    ties

let test_scfq_program_differential () =
  List.iter
    (fun tie ->
      for seed = 1 to 20 do
        let name = Printf.sprintf "scfq[%s] seed %d" (tie_name tie) seed in
        run_differential ~name
          (fun w -> Scfq.sched (Scfq.create ~tie:(tie_of w tie) w))
          (fun w -> pifo ~tie:(tie_of w tie) (Programs.scfq w))
          (gen_scenario ((seed * 6101) + 1))
      done)
    ties

let test_vc_program_differential () =
  List.iter
    (fun tie ->
      for seed = 1 to 20 do
        let name = Printf.sprintf "vc[%s] seed %d" (tie_name tie) seed in
        run_differential ~name
          (fun w -> Vc.sched (Vc.create ~tie:(tie_of w tie) w))
          (fun w -> pifo ~tie:(tie_of w tie) (Programs.virtual_clock w))
          (gen_scenario ((seed * 6101) + 2))
      done)
    ties

let edd_specs weights =
  List.map
    (fun (f, r) -> (f, { Edd.rate = r; deadline = 1.0; max_len = 1500 }))
    weights

let test_edd_program_differential () =
  for seed = 1 to 20 do
    let name = Printf.sprintf "edd seed %d" seed in
    let ((weights, _, _) as scenario) = gen_scenario ((seed * 6101) + 3) in
    let specs = edd_specs weights in
    run_differential ~name
      (fun _ -> Edd.sched (Edd.create specs))
      (fun _ -> pifo (Programs.delay_edd specs))
      scenario
  done

(* The GPS-clocked programs rank by fluid tags whose divisions are not
   dyadic in general, but encoding is monotone (round-to-nearest of a
   non-decreasing map), so on these scenarios the quantized order
   still matches the float order packet-for-packet — the frozen seeds
   pin that. *)
let gps_capacity = 800.0

let test_fqs_program_differential () =
  List.iter
    (fun tie ->
      for seed = 1 to 20 do
        let name = Printf.sprintf "fqs[%s] seed %d" (tie_name tie) seed in
        run_differential ~name
          (fun w -> Fqs.sched (Fqs.create ~capacity:gps_capacity ~tie:(tie_of w tie) w))
          (fun w -> pifo ~tie:(tie_of w tie) (Programs.fqs ~capacity:gps_capacity w))
          (gen_scenario ((seed * 6101) + 4))
      done)
    ties

let test_wf2q_program_differential () =
  List.iter
    (fun tie ->
      for seed = 1 to 20 do
        let name = Printf.sprintf "wf2q[%s] seed %d" (tie_name tie) seed in
        run_differential ~name
          (fun w -> Wf2q.sched (Wf2q.create ~capacity:gps_capacity ~tie:(tie_of w tie) w))
          (fun w -> pifo ~tie:(tie_of w tie) (Programs.wf2q ~capacity:gps_capacity w))
          (gen_scenario ((seed * 6101) + 5))
      done)
    ties

(* ------------------------------------------------------------------ *)
(* Hierarchy: the int-tag PIFO tree vs the float class tree, inner
   SFQ leaves on both sides (float leaves run the float Sfq, tree
   leaves run the pifo-sfq rank program — each pair is itself
   differentially identical, so any divergence is the tree's).          *)

let split_classes weights =
  List.partition (fun (f, _) -> f mod 2 = 0) weights

let float_hier weights =
  let left_flows, right_flows = split_classes weights in
  let h = Hsfq.create () in
  let root = Hsfq.root h in
  let leaves_under parent flows =
    List.map
      (fun (f, r) ->
        let w = Weights.of_list ~default:1.0 [ (f, r) ] in
        (f, Hsfq.add_leaf h ~parent ~weight:r (Sfq.sched (Sfq.create w))))
      flows
  in
  let leaves =
    (if left_flows = [] then []
     else leaves_under (Hsfq.add_class h ~parent:root ~weight:200.0) left_flows)
    @
    if right_flows = [] then []
    else leaves_under (Hsfq.add_class h ~parent:root ~weight:100.0) right_flows
  in
  Hsfq.set_classifier h (Hsfq.classifier_by_flow leaves);
  Hsfq.sched h

let pifo_hier weights =
  let left_flows, right_flows = split_classes weights in
  let h = Ptree.create () in
  let root = Ptree.root h in
  let leaves_under parent flows =
    List.map
      (fun (f, r) ->
        let w = Weights.of_list ~default:1.0 [ (f, r) ] in
        (f, Ptree.add_leaf h ~parent ~weight:r (pifo (Programs.sfq w))))
      flows
  in
  let leaves =
    (if left_flows = [] then []
     else leaves_under (Ptree.add_class h ~parent:root ~weight:200.0) left_flows)
    @
    if right_flows = [] then []
    else leaves_under (Ptree.add_class h ~parent:root ~weight:100.0) right_flows
  in
  Ptree.set_classifier h (Ptree.classifier_by_flow leaves);
  Ptree.sched h

let test_hsfq_tree_differential () =
  for seed = 1 to 20 do
    let name = Printf.sprintf "hsfq seed %d" seed in
    let ((weights, _, _) as scenario) = gen_scenario ((seed * 6101) + 6) in
    run_differential ~name
      (fun _ -> float_hier weights)
      (fun _ -> pifo_hier weights)
      scenario
  done

(* ------------------------------------------------------------------ *)
(* Oracle digests: every port ≡ its original at 1/2/4/8 domains.
   outcome_digest covers departures, finish time and violations — the
   cross-implementation invariant that survives fixed-point
   quantization on the non-dyadic pool traces (both sides are
   work-conserving, so busy periods and their end times coincide).      *)

let structural_cell ~what mk =
  List.mapi (fun i w ->
      {
        O.Run.label = Printf.sprintf "%s#%d" what i;
        workload = w;
        driver =
          (fun () ->
            { O.Run.sched = mk w; monitors = O.Suite.structural (); on_reweight = None });
      })

let by_prefix prefix cells =
  List.filter
    (fun (c : O.Run.cell) -> String.starts_with ~prefix (c.O.Run.label))
    cells

let assert_port_digests_match ~what float_cells pifo_cells =
  check_int (what ^ ": cell counts line up")
    (List.length float_cells) (List.length pifo_cells);
  let digests ~domains cells =
    Array.map O.Run.outcome_digest (O.Run.sweep ~domains cells)
  in
  let reference = digests ~domains:1 float_cells in
  List.iter
    (fun domains ->
      let fd = digests ~domains pifo_cells in
      Array.iteri
        (fun i expected ->
          check_string
            (Printf.sprintf "%s cell %d at %d domains" what i domains)
            expected fd.(i))
        reference)
    [ 1; 2; 4; 8 ]

let test_port_digests_across_domains () =
  let pool = take 18 O.Suite.theorem_pool in
  let pifo_cells = O.Suite.pifo_cells ~pool () in
  let weights_of (w : O.Workload.t) = Weights.of_list ~default:1.0 w.O.Workload.weights in
  let specs (w : O.Workload.t) = edd_specs w.O.Workload.weights in
  List.iter
    (fun (what, float_cells) ->
      assert_port_digests_match ~what float_cells
        (by_prefix (what ^ "#") pifo_cells))
    [
      ("pifo-sfq", O.Suite.sfq_cells ~pool ());
      ("pifo-scfq", O.Suite.scfq_cells ~pool ());
      ( "pifo-vc",
        structural_cell ~what:"vc" (fun w -> Vc.sched (Vc.create (weights_of w))) pool );
      ( "pifo-edd",
        structural_cell ~what:"edd" (fun w -> Edd.sched (Edd.create (specs w))) pool );
      ( "pifo-fqs",
        structural_cell ~what:"fqs"
          (fun w -> Fqs.sched (Fqs.create ~capacity:w.O.Workload.capacity (weights_of w)))
          pool );
      ( "pifo-wf2q",
        structural_cell ~what:"wf2q"
          (fun w -> Wf2q.sched (Wf2q.create ~capacity:w.O.Workload.capacity (weights_of w)))
          pool );
    ]

(* ------------------------------------------------------------------ *)
(* Runtime core model: push/pop/evict/close against a naive sorted
   list. The rank program is a per-flow byte counter (rank = bytes
   already queued by the flow), so per-flow ranks are non-decreasing
   — the runtime's documented precondition — and cross-flow ties are
   plentiful (every flow starts at 0), exercising FIFO-stable
   tie-breaking by global arrival order.                                *)

type mop = MPush of int * int | MPop | MEvict of bool * int | MClose of int

let gen_mop =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun f l -> MPush (f, 100 * (1 + l))) (int_bound 2) (int_bound 9));
        (4, return MPop);
        (1, map2 (fun newest f -> MEvict (newest, f)) bool (int_bound 2));
        (1, map (fun f -> MClose f) (int_bound 2));
      ])

let arb_mops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | MPush (f, l) -> Printf.sprintf "push(%d,%d)" f l
             | MPop -> "pop"
             | MEvict (n, f) -> Printf.sprintf "evict(%b,%d)" n f
             | MClose f -> Printf.sprintf "close(%d)" f)
           ops))
    QCheck.Gen.(list_size (int_range 1 200) gen_mop)

let counter_prog () =
  let tags = Hashtbl.create 16 in
  let regs = Rank_program.regs () in
  {
    Rank_program.name = "model-counter";
    regs;
    shaped = false;
    rank =
      (fun ~now:_ pkt ->
        let f = pkt.Packet.flow in
        let t = Option.value (Hashtbl.find_opt tags f) ~default:0 in
        Hashtbl.replace tags f (t + pkt.Packet.len);
        regs.aux <- t + pkt.Packet.len;
        t);
    on_dequeue = Rank_program.no_dequeue;
    on_idle = Rank_program.no_idle;
    horizon = Rank_program.no_horizon;
    attach = Rank_program.no_attach;
    on_close = (fun ~now:_ f -> Hashtbl.remove tags f);
    vtime = Rank_program.no_vtime;
  }

(* Reference: entries in push order; service order is the stable sort
   by (rank, push index). *)
type mentry = { mkey : int; muid : int; mpkt : Packet.t }

let prop_runtime_matches_sorted_list =
  QCheck.Test.make ~count:300 ~name:"Pifo_sched == naive sorted list" arb_mops
    (fun ops ->
      let t = Pifo.create (counter_prog ()) in
      let model = ref [] (* newest first *) in
      let mtags = Hashtbl.create 16 in
      let uid = ref 0 in
      let seqs = Array.make 3 0 in
      let fail fmt = QCheck.Test.fail_reportf fmt in
      let model_min () =
        List.fold_left
          (fun best e ->
            match best with
            | None -> Some e
            | Some b ->
              if (e.mkey, e.muid) < (b.mkey, b.muid) then Some e else Some b)
          None !model
      in
      let remove e = model := List.filter (fun x -> x != e) !model in
      List.iter
        (fun op ->
          match op with
          | MPush (f, len) ->
            seqs.(f) <- seqs.(f) + 1;
            let p = Packet.make ~flow:f ~seq:seqs.(f) ~len ~born:0.0 () in
            let k = Option.value (Hashtbl.find_opt mtags f) ~default:0 in
            Hashtbl.replace mtags f (k + len);
            Pifo.enqueue t ~now:0.0 p;
            incr uid;
            model := { mkey = k; muid = !uid; mpkt = p } :: !model
          | MPop -> (
            let got = Pifo.dequeue t ~now:0.0 in
            match (got, model_min ()) with
            | None, None -> ()
            | Some p, Some e when p == e.mpkt -> remove e
            | got, want ->
              fail "pop: runtime %s, model %s" (pkt_str got)
                (pkt_str (Option.map (fun e -> e.mpkt) want)))
          | MEvict (newest, f) -> (
            let got = Pifo.evict t (if newest then Sched.Newest else Sched.Oldest) f in
            let mine = List.filter (fun e -> e.mpkt.Packet.flow = f) !model in
            let want =
              (* newest first in [model], so hd = newest of the flow *)
              match mine with
              | [] -> None
              | hd :: _ when newest -> Some hd
              | l -> Some (List.nth l (List.length l - 1))
            in
            match (got, want) with
            | None, None -> ()
            | Some p, Some e when p == e.mpkt -> remove e
            | got, want ->
              fail "evict flow %d: runtime %s, model %s" f (pkt_str got)
                (pkt_str (Option.map (fun e -> e.mpkt) want)))
          | MClose f ->
            let got = Pifo.close_flow t ~now:0.0 f in
            let want =
              List.rev
                (List.filter_map
                   (fun e -> if e.mpkt.Packet.flow = f then Some e.mpkt else None)
                   !model)
            in
            Hashtbl.remove mtags f;
            model := List.filter (fun e -> e.mpkt.Packet.flow <> f) !model;
            if
              List.length got <> List.length want
              || not (List.for_all2 ( == ) got want)
            then fail "close flow %d: %d vs %d packets" f (List.length got) (List.length want))
        ops;
      if Pifo.size t <> List.length !model then
        fail "size: runtime %d, model %d" (Pifo.size t) (List.length !model);
      for f = 0 to 2 do
        let b = List.length (List.filter (fun e -> e.mpkt.Packet.flow = f) !model) in
        if Pifo.backlog t f <> b then
          fail "backlog %d: runtime %d, model %d" f (Pifo.backlog t f) b
      done;
      true)

let test_fifo_stable_ties () =
  (* Three flows, all at rank 0: service must be global arrival order
     (the PIFO contract's FIFO tie stability), not heap layout. *)
  let t = Pifo.create (counter_prog ()) in
  let pkts =
    List.init 9 (fun i ->
        Packet.make ~flow:(i mod 3) ~seq:(1 + (i / 3)) ~len:100 ~born:0.0 ())
  in
  (* every flow's FIRST packet has rank 0; later ones rank 100, 200 —
     so service order is p0 p1 p2 (ties at 0), then p3 p4 p5 (100)… *)
  List.iter (Pifo.enqueue t ~now:0.0) pkts;
  List.iter
    (fun want ->
      let got = Pifo.dequeue_exn t in
      check_bool "FIFO-stable tie order" true (got == want))
    pkts;
  check_bool "drained" true (Pifo.is_empty t)

(* ------------------------------------------------------------------ *)
(* Allocation: the unshaped runtime hot path must be as quiet as the
   hand-written fast path.                                              *)

let alloc_pkts n = Array.init n (fun f -> Packet.make ~flow:f ~seq:1 ~len:1000 ~born:0.0 ())

let alloc_delta step =
  for _ = 1 to 2_000 do
    step ()
  done;
  Gc.compact ();
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    step ()
  done;
  Gc.minor_words () -. before

let test_zero_alloc_steady_state () =
  let n = 32 in
  let stepper prog () =
    let t = Pifo.create ~capacity:64 (prog ()) in
    let pkts = alloc_pkts n in
    Array.iter (Pifo.enqueue t ~now:0.0) pkts;
    let i = ref 0 in
    fun () ->
      Pifo.enqueue t ~now:0.0 pkts.(!i);
      i := (!i + 1) land (n - 1);
      ignore (Pifo.dequeue_exn t)
  in
  List.iter
    (fun (name, mk) ->
      let d = alloc_delta (mk ()) in
      check_bool (Printf.sprintf "%s: %.0f minor words over 10k op pairs" name d) true
        (d <= 64.0))
    [
      ("pifo-sfq", stepper (fun () -> Programs.sfq (Weights.uniform 100.0)));
      ("pifo-scfq", stepper (fun () -> Programs.scfq (Weights.uniform 100.0)));
      ("pifo-vc", stepper (fun () -> Programs.virtual_clock (Weights.uniform 100.0)));
    ]

(* ------------------------------------------------------------------ *)
(* Rank clamping: user programs cannot wrap the order.                  *)

let const_rank_prog ranks =
  let i = ref (-1) in
  let regs = Rank_program.regs () in
  {
    Rank_program.name = "wild-ranks";
    regs;
    shaped = false;
    rank =
      (fun ~now:_ _ ->
        incr i;
        ranks.(!i));
    on_dequeue = Rank_program.no_dequeue;
    on_idle = Rank_program.no_idle;
    horizon = Rank_program.no_horizon;
    attach = Rank_program.no_attach;
    on_close = Rank_program.no_close;
    vtime = Rank_program.no_vtime;
  }

let test_rank_saturation_rail () =
  (* A wild program emits a negative rank, an overflowing one, then a
     plain zero. Negative clamps to 0, max_int saturates to the Tag
     rail; the order stays total and FIFO-stable at each clamp — wild
     ranks degrade, they never wrap ahead. *)
  let t = Pifo.create (const_rank_prog [| -100; max_int; 0 |]) in
  let p1 = Packet.make ~flow:0 ~seq:1 ~len:100 ~born:0.0 () in
  let p2 = Packet.make ~flow:1 ~seq:1 ~len:100 ~born:0.0 () in
  let p3 = Packet.make ~flow:2 ~seq:1 ~len:100 ~born:0.0 () in
  check_bool "fresh runtime unsaturated" false (Pifo.saturated t);
  Pifo.enqueue t ~now:0.0 p1;
  Pifo.enqueue t ~now:0.0 p2;
  check_bool "saturated after the max_int rank" true (Pifo.saturated t);
  check_int "high watermark is the rail, not a wrap" Tag.max_tag (Pifo.high_tag t);
  Pifo.enqueue t ~now:0.0 p3;
  check_bool "p1 first (clamped to 0, earlier arrival)" true (Pifo.dequeue_exn t == p1);
  check_bool "p3 second (rank 0)" true (Pifo.dequeue_exn t == p3);
  check_bool "p2 last (saturated, did not wrap negative)" true (Pifo.dequeue_exn t == p2);
  check_bool "drained" true (Pifo.is_empty t)

let test_flow_validation () =
  let t = Pifo.create (counter_prog ()) in
  Alcotest.check_raises "negative flow rejected"
    (Invalid_argument "Pifo_sched.enqueue: flow id must be >= 0") (fun () ->
      Pifo.enqueue t ~now:0.0 (Packet.make ~flow:(-1) ~seq:1 ~len:100 ~born:0.0 ()))

(* ------------------------------------------------------------------ *)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "pifo_equiv"
    [
      ( "differential",
        [
          Alcotest.test_case "pifo-sfq == sfq (dyadic)" `Quick test_sfq_program_differential;
          Alcotest.test_case "pifo-scfq == scfq (dyadic)" `Quick
            test_scfq_program_differential;
          Alcotest.test_case "pifo-vc == vc (dyadic)" `Quick test_vc_program_differential;
          Alcotest.test_case "pifo-edd == edd (dyadic)" `Quick test_edd_program_differential;
          Alcotest.test_case "pifo-fqs == fqs (dyadic)" `Quick test_fqs_program_differential;
          Alcotest.test_case "pifo-wf2q == wf2q (dyadic)" `Quick
            test_wf2q_program_differential;
          Alcotest.test_case "pifo-hsfq == hsfq (dyadic)" `Quick test_hsfq_tree_differential;
        ] );
      ( "digest",
        [
          Alcotest.test_case "every port matches its original at 1/2/4/8 domains" `Slow
            test_port_digests_across_domains;
        ] );
      ( "model",
        [
          q prop_runtime_matches_sorted_list;
          Alcotest.test_case "FIFO-stable ties" `Quick test_fifo_stable_ties;
        ] );
      ( "allocation",
        [ Alcotest.test_case "zero-alloc steady state" `Quick test_zero_alloc_steady_state ] );
      ( "saturation",
        [
          Alcotest.test_case "rank clamp rail" `Quick test_rank_saturation_rail;
          Alcotest.test_case "flow validation" `Quick test_flow_validation;
        ] );
    ]
