(* Differential tests for the O(log F) scheduling hot path.

   The per-flow-heap schedulers (Flow_heap-backed Tag_queue, Sfq, Wf2q)
   must be packet-for-packet identical to the seed per-packet-heap
   implementations frozen in Sfq_sched.Ref_sched, on randomized
   workloads with mixed weights, tag collisions, idle gaps and
   dequeues-on-empty, under all three tie rules and both SFQ busy
   rules. Also unit-tests the new substrate: Fheap, Flow_heap, the
   dense Flow_table fast path, and Ds_heap's honored capacity. *)

open Sfq_util
open Sfq_base
open Sfq_sched

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Fheap                                                                *)

let test_fheap_sorts () =
  let rng = Rng.create 11 in
  let h = Fheap.create ~capacity:4 () in
  let items =
    List.init 500 (fun uid ->
        (float_of_int (Rng.int rng 20) *. 0.5, float_of_int (Rng.int rng 3), uid))
  in
  List.iter (fun (key, tie, uid) -> Fheap.add h ~key ~tie ~uid (key, tie, uid)) items;
  check_int "length" 500 (Fheap.length h);
  let expected = List.sort compare items in
  let popped =
    List.init 500 (fun _ ->
        match Fheap.pop h with Some (_, x) -> x | None -> Alcotest.fail "early empty")
  in
  Alcotest.(check bool) "pop order = sorted (key, tie, uid)" true (popped = expected);
  check_bool "drained" true (Fheap.is_empty h)

let test_fheap_pop_returns_key () =
  let h = Fheap.create () in
  Fheap.add h ~key:2.5 ~tie:0.0 ~uid:0 "b";
  Fheap.add h ~key:1.5 ~tie:0.0 ~uid:1 "a";
  (match Fheap.min h with
  | Some (k, v) ->
    Alcotest.(check (float 0.0)) "min key" 1.5 k;
    Alcotest.(check string) "min payload" "a" v
  | None -> Alcotest.fail "empty");
  Alcotest.(check (float 0.0)) "min_key_exn" 1.5 (Fheap.min_key_exn h);
  (match Fheap.pop h with
  | Some (k, v) ->
    Alcotest.(check (float 0.0)) "popped key" 1.5 k;
    Alcotest.(check string) "popped payload" "a" v
  | None -> Alcotest.fail "empty");
  check_int "one left" 1 (Fheap.length h)

let test_fheap_empty () =
  let h = Fheap.create () in
  check_bool "is_empty" true (Fheap.is_empty h);
  check_bool "pop none" true (Fheap.pop h = None);
  check_bool "min none" true (Fheap.min h = None);
  Alcotest.check_raises "min_key_exn raises"
    (Invalid_argument "Fheap.min_key_exn: empty heap") (fun () ->
      ignore (Fheap.min_key_exn h));
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Fheap.create: capacity must be >= 1") (fun () ->
      ignore (Fheap.create ~capacity:0 ()))

let test_fheap_clear () =
  let h = Fheap.create () in
  for i = 0 to 9 do
    Fheap.add h ~key:(float_of_int i) ~tie:0.0 ~uid:i i
  done;
  Fheap.clear h;
  check_bool "empty after clear" true (Fheap.is_empty h);
  Fheap.add h ~key:3.0 ~tie:0.0 ~uid:42 42;
  check_bool "usable after clear" true (Fheap.pop_elt h = Some 42)

(* ------------------------------------------------------------------ *)
(* Flow_heap vs a single global heap                                    *)

let test_flow_heap_matches_global_heap () =
  let rng = Rng.create 7 in
  let nflows = 12 in
  let fh = Flow_heap.create () in
  let reference = Ds_heap.create ~cmp:compare () in
  (* (key, tie, uid) triples; Ds_heap with polymorphic compare is the
     oracle for the global order. Keys per flow are non-decreasing. *)
  let last_key = Array.make nflows 0.0 in
  let ties = Array.init nflows (fun f -> float_of_int (f mod 3)) in
  let uid = ref 0 in
  let queued = ref 0 in
  for _ = 1 to 4000 do
    if Rng.float rng 1.0 < 0.55 then begin
      let flow = Rng.int rng nflows in
      last_key.(flow) <- last_key.(flow) +. (float_of_int (Rng.int rng 3) *. 0.5);
      let key = last_key.(flow) in
      Flow_heap.push fh ~flow ~key ~aux:(key +. 1.0) ~tie:ties.(flow) (flow, !uid);
      Ds_heap.add reference (key, ties.(flow), !uid, flow);
      incr uid;
      incr queued
    end
    else begin
      match (Flow_heap.pop fh, Ds_heap.pop_min reference) with
      | None, None -> ()
      | Some p, Some (key, _, u, flow) ->
        decr queued;
        check_int "flow" flow p.Flow_heap.flow;
        check_int "uid" u p.Flow_heap.uid;
        Alcotest.(check (float 0.0)) "key" key p.Flow_heap.key;
        Alcotest.(check (float 0.0)) "aux" (key +. 1.0) p.Flow_heap.aux;
        check_bool "payload" true (p.Flow_heap.value = (flow, u))
      | _ -> Alcotest.fail "divergence: one heap empty"
    end;
    check_int "sizes agree" (Ds_heap.length reference) (Flow_heap.size fh)
  done

let test_flow_heap_accounting () =
  let fh = Flow_heap.create () in
  check_bool "empty" true (Flow_heap.is_empty fh);
  Flow_heap.push fh ~flow:3 ~key:1.0 ~tie:0.0 "a";
  Flow_heap.push fh ~flow:3 ~key:2.0 ~tie:0.0 "b";
  Flow_heap.push fh ~flow:5 ~key:1.5 ~tie:0.0 "c";
  check_int "size" 3 (Flow_heap.size fh);
  check_int "backlog 3" 2 (Flow_heap.backlog fh 3);
  check_int "backlog 5" 1 (Flow_heap.backlog fh 5);
  check_int "backlog other" 0 (Flow_heap.backlog fh 9);
  check_int "active flows" 2 (Flow_heap.active_flows fh);
  (match Flow_heap.peek fh with
  | Some p -> check_bool "peek head" true (p.Flow_heap.value = "a")
  | None -> Alcotest.fail "peek empty");
  check_int "peek keeps size" 3 (Flow_heap.size fh);
  let order = List.init 3 (fun _ -> (Option.get (Flow_heap.pop fh)).Flow_heap.value) in
  check_bool "pop order" true (order = [ "a"; "c"; "b" ]);
  check_int "active after drain" 0 (Flow_heap.active_flows fh)

(* ------------------------------------------------------------------ *)
(* Flow_table dense fast path                                           *)

let test_flow_table_dense_and_sparse () =
  let t = Flow_table.create ~default:(fun f -> 10 * f) in
  check_int "dense default" 30 (Flow_table.find t 3);
  check_int "sparse default" (-20) (Flow_table.find t (-2));
  Flow_table.set t 3 7;
  Flow_table.set t 1_500_000 8;
  (* beyond the dense range *)
  Flow_table.set t (-2) 9;
  check_int "dense set" 7 (Flow_table.find t 3);
  check_int "big id set" 8 (Flow_table.find t 1_500_000);
  check_int "negative id set" 9 (Flow_table.find t (-2));
  check_int "length" 3 (Flow_table.length t);
  check_bool "find_opt misses without creating" true (Flow_table.find_opt t 4 = None);
  check_int "length unchanged" 3 (Flow_table.length t);
  Alcotest.(check (list int)) "flows sorted" [ -2; 3; 1_500_000 ] (Flow_table.flows t);
  let sum = Flow_table.fold t ~init:0 ~f:(fun _ v acc -> acc + v) in
  check_int "fold over both regions" 24 sum;
  Flow_table.remove t 3;
  check_bool "removed" false (Flow_table.mem t 3);
  check_int "length after remove" 2 (Flow_table.length t);
  check_int "recreated from default" 30 (Flow_table.find t 3);
  Flow_table.clear t;
  check_int "cleared" 0 (Flow_table.length t);
  check_bool "cleared mem" false (Flow_table.mem t 1_500_000)

let test_flow_table_growth () =
  let t = Flow_table.create ~default:(fun _ -> 0) in
  for f = 0 to 2_000 do
    Flow_table.set t f f
  done;
  check_int "length" 2_001 (Flow_table.length t);
  let ok = ref true in
  for f = 0 to 2_000 do
    if Flow_table.find t f <> f then ok := false
  done;
  check_bool "all retained across growth" true !ok

(* ------------------------------------------------------------------ *)
(* Ds_heap capacity                                                     *)

let test_ds_heap_capacity () =
  let h = Ds_heap.create ~capacity:4 ~cmp:compare () in
  for i = 9 downto 0 do
    Ds_heap.add h i
  done;
  Alcotest.(check (list int)) "still sorts past capacity" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (Ds_heap.to_sorted_list h);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Ds_heap.create: capacity must be >= 1") (fun () ->
      ignore (Ds_heap.create ~capacity:0 ~cmp:compare ()))

(* ------------------------------------------------------------------ *)
(* Randomized order equivalence: production vs frozen seed schedulers   *)

type op = Enq of float * Packet.t | Deq of float

(* A workload that stresses every branch: quantized arrival times and a
   small weight/length pool so tags collide (exercising tie rules),
   occasional large time gaps with full drains (busy-period ends),
   dequeues against an empty queue (idle polling), per-packet rate
   overrides, and deep per-flow backlogs. *)
let gen_workload rng ~nflows ~npkts =
  let seqs = Array.make nflows 0 in
  let now = ref 0.0 in
  let queued = ref 0 in
  let enqueued = ref 0 in
  let ops = ref [] in
  while !enqueued < npkts || !queued > 0 do
    if Rng.float rng 1.0 < 0.02 then now := !now +. Rng.float rng 50.0
    else now := !now +. (float_of_int (Rng.int rng 4) *. 0.25);
    let enq_allowed = !enqueued < npkts in
    let do_enq =
      enq_allowed
      && (if !queued = 0 then Rng.float rng 1.0 < 0.9 else Rng.float rng 1.0 < 0.55)
    in
    if do_enq then begin
      let flow = Rng.int rng nflows in
      seqs.(flow) <- seqs.(flow) + 1;
      let len = (1 + Rng.int rng 4) * 500 in
      let rate =
        if Rng.float rng 1.0 < 0.05 then Some (float_of_int (1 + Rng.int rng 3) *. 400.0)
        else None
      in
      ops := Enq (!now, Packet.make ?rate ~flow ~seq:seqs.(flow) ~len ~born:!now ()) :: !ops;
      incr enqueued;
      incr queued
    end
    else begin
      ops := Deq !now :: !ops;
      if !queued > 0 then decr queued
    end
  done;
  ops := Deq !now :: Deq !now :: !ops;
  List.rev !ops

type driver = {
  enq : now:float -> Packet.t -> unit;
  deq : now:float -> Packet.t option;
  post : unit -> unit;  (* extra invariant checks after each dequeue *)
}

let run_pair ~name ops production reference =
  List.iter
    (fun op ->
      match op with
      | Enq (now, p) ->
        production.enq ~now p;
        reference.enq ~now p
      | Deq now -> begin
        let x = production.deq ~now in
        let y = reference.deq ~now in
        (match (x, y) with
        | None, None -> ()
        | Some p, Some q ->
          if p.Packet.flow <> q.Packet.flow || p.Packet.seq <> q.Packet.seq then
            Alcotest.failf "%s: got flow %d seq %d, seed emitted flow %d seq %d" name
              p.Packet.flow p.Packet.seq q.Packet.flow q.Packet.seq
        | Some p, None ->
          Alcotest.failf "%s: emitted flow %d seq %d where seed was empty" name
            p.Packet.flow p.Packet.seq
        | None, Some q ->
          Alcotest.failf "%s: empty where seed emitted flow %d seq %d" name q.Packet.flow
            q.Packet.seq);
        production.post ();
        reference.post ()
      end)
    ops

let nflows = 40
let npkts = 12_000
let rate_pool = [| 250.0; 500.0; 1000.0; 1000.0; 2000.0; 4000.0 |]

let make_weights rng =
  Weights.of_list
    (List.init nflows (fun f -> (f, rate_pool.(Rng.int rng (Array.length rate_pool)))))

let ties w =
  let lookup f = Weights.get w f in
  [
    ("arrival", Tag_queue.Arrival);
    ("low-rate", Tag_queue.Low_rate lookup);
    ("high-rate", Tag_queue.High_rate lookup);
  ]

let no_post = fun () -> ()

let test_sfq_equivalence () =
  List.iter
    (fun (busy_name, busy, ref_busy) ->
      let rng = Rng.create 1001 in
      let w = make_weights rng in
      List.iter
        (fun (tie_name, tie) ->
          let ops = gen_workload (Rng.create 42) ~nflows ~npkts in
          let s = Sfq_core.Sfq.create ~tie ~busy_rule:busy w in
          let r = Ref_sched.Sfq_ref.create ~tie ~busy_rule:ref_busy w in
          let vtimes_agree () =
            let a = Sfq_core.Sfq.vtime s and b = Ref_sched.Sfq_ref.vtime r in
            if a <> b then
              Alcotest.failf "sfq/%s/%s vtime diverged: %.17g vs %.17g" busy_name
                tie_name a b
          in
          run_pair
            ~name:(Printf.sprintf "sfq/%s/%s" busy_name tie_name)
            ops
            {
              enq = Sfq_core.Sfq.enqueue s;
              deq = (fun ~now -> Sfq_core.Sfq.dequeue s ~now);
              post = vtimes_agree;
            }
            {
              enq = Ref_sched.Sfq_ref.enqueue r;
              deq = (fun ~now -> Ref_sched.Sfq_ref.dequeue r ~now);
              post = no_post;
            };
          check_int
            (Printf.sprintf "sfq/%s/%s drained" busy_name tie_name)
            0 (Sfq_core.Sfq.size s))
        (ties w))
    [
      ("idle-poll", Sfq_core.Sfq.Idle_poll, Ref_sched.Sfq_ref.Idle_poll);
      ("on-empty", Sfq_core.Sfq.On_empty, Ref_sched.Sfq_ref.On_empty);
    ]

let test_scfq_equivalence () =
  let rng = Rng.create 1002 in
  let w = make_weights rng in
  List.iter
    (fun (tie_name, tie) ->
      let ops = gen_workload (Rng.create 43) ~nflows ~npkts in
      let s = Scfq.create ~tie w in
      let r = Ref_sched.Scfq_ref.create ~tie w in
      let vtimes_agree () =
        if Scfq.vtime s <> Ref_sched.Scfq_ref.vtime r then
          Alcotest.failf "scfq/%s vtime diverged" tie_name
      in
      run_pair
        ~name:(Printf.sprintf "scfq/%s" tie_name)
        ops
        {
          enq = Scfq.enqueue s;
          deq = (fun ~now -> Scfq.dequeue s ~now);
          post = vtimes_agree;
        }
        {
          enq = Ref_sched.Scfq_ref.enqueue r;
          deq = (fun ~now -> Ref_sched.Scfq_ref.dequeue r ~now);
          post = no_post;
        })
    (ties w)

let test_virtual_clock_equivalence () =
  let rng = Rng.create 1003 in
  let w = make_weights rng in
  List.iter
    (fun (tie_name, tie) ->
      let ops = gen_workload (Rng.create 44) ~nflows ~npkts in
      let s = Virtual_clock.create ~tie w in
      let r = Ref_sched.Virtual_clock_ref.create ~tie w in
      run_pair
        ~name:(Printf.sprintf "virtual-clock/%s" tie_name)
        ops
        {
          enq = Virtual_clock.enqueue s;
          deq = (fun ~now -> Virtual_clock.dequeue s ~now);
          post = no_post;
        }
        {
          enq = Ref_sched.Virtual_clock_ref.enqueue r;
          deq = (fun ~now -> Ref_sched.Virtual_clock_ref.dequeue r ~now);
          post = no_post;
        })
    (ties w)

let capacity = 8000.0

let test_fqs_equivalence () =
  let rng = Rng.create 1004 in
  let w = make_weights rng in
  List.iter
    (fun (tie_name, tie) ->
      let ops = gen_workload (Rng.create 45) ~nflows ~npkts in
      let s = Fqs.create ~capacity ~tie w in
      let r = Ref_sched.Fqs_ref.create ~capacity ~tie w in
      run_pair
        ~name:(Printf.sprintf "fqs/%s" tie_name)
        ops
        { enq = Fqs.enqueue s; deq = (fun ~now -> Fqs.dequeue s ~now); post = no_post }
        {
          enq = Ref_sched.Fqs_ref.enqueue r;
          deq = (fun ~now -> Ref_sched.Fqs_ref.dequeue r ~now);
          post = no_post;
        })
    (ties w)

let test_wf2q_equivalence () =
  let rng = Rng.create 1005 in
  let w = make_weights rng in
  List.iter
    (fun (tie_name, tie) ->
      let ops = gen_workload (Rng.create 46) ~nflows ~npkts in
      let s = Wf2q.create ~capacity ~tie w in
      let r = Ref_sched.Wf2q_ref.create ~capacity ~tie w in
      run_pair
        ~name:(Printf.sprintf "wf2q/%s" tie_name)
        ops
        { enq = Wf2q.enqueue s; deq = (fun ~now -> Wf2q.dequeue s ~now); post = no_post }
        {
          enq = Ref_sched.Wf2q_ref.enqueue r;
          deq = (fun ~now -> Ref_sched.Wf2q_ref.dequeue r ~now);
          post = no_post;
        })
    (ties w)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "order-equiv"
    [
      ( "fheap",
        [
          Alcotest.test_case "sorts (key, tie, uid)" `Quick test_fheap_sorts;
          Alcotest.test_case "pop returns key" `Quick test_fheap_pop_returns_key;
          Alcotest.test_case "empty" `Quick test_fheap_empty;
          Alcotest.test_case "clear" `Quick test_fheap_clear;
        ] );
      ( "flow_heap",
        [
          Alcotest.test_case "matches global heap" `Quick test_flow_heap_matches_global_heap;
          Alcotest.test_case "accounting" `Quick test_flow_heap_accounting;
        ] );
      ( "flow_table",
        [
          Alcotest.test_case "dense and sparse" `Quick test_flow_table_dense_and_sparse;
          Alcotest.test_case "growth" `Quick test_flow_table_growth;
        ] );
      ( "ds_heap",
        [ Alcotest.test_case "capacity honored" `Quick test_ds_heap_capacity ] );
      ( "order-equivalence",
        [
          Alcotest.test_case "sfq = seed sfq (3 ties x 2 busy rules)" `Quick
            test_sfq_equivalence;
          Alcotest.test_case "scfq = seed scfq" `Quick test_scfq_equivalence;
          Alcotest.test_case "virtual clock = seed" `Quick test_virtual_clock_equivalence;
          Alcotest.test_case "fqs = seed fqs" `Quick test_fqs_equivalence;
          Alcotest.test_case "wf2q = seed wf2q" `Quick test_wf2q_equivalence;
        ] );
    ]
