(* Tests for sfq.obs: tracer ring semantics (flight-recorder
   overwrite), tag-hook wiring and its [active] gating, wrapper
   transparency, the JSONL and Chrome trace_event exporters (structural
   validity checked by parsing, not grepping), per-flow summaries, the
   metrics registry and its Server/Sim wiring, and the oracle
   cross-check: per-flow service derived from the trace must agree with
   the Service_log the fairness analysis is built on. *)

open Sfq_base
open Sfq_core
open Sfq_obs
open Sfq_oracle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let check_str = Alcotest.(check string)

let pkt ?rate ?(born = 0.0) ~flow ~seq ~len () = Packet.make ?rate ~flow ~seq ~len ~born ()
let fifo () = Sfq_sched.Fifo.sched (Sfq_sched.Fifo.create ())

(* Equal-weight round-robin CBR at 90% load: every packet departs, so a
   big-ring trace retains each packet's full arrival/tag/dequeue story. *)
let rr_workload ~flows ~pkts ~len =
  let capacity = 1_000_000.0 in
  let gap = float_of_int len /. (0.9 *. capacity) in
  let arrivals =
    List.init (flows * pkts) (fun k ->
        { Workload.at = float_of_int k *. gap; flow = k mod flows; len; rate = None })
  in
  {
    Workload.capacity;
    weights = List.init flows (fun f -> (f, 0.9 *. capacity /. float_of_int flows));
    arrivals;
    reweights = [];
    churn = [];
    rate_changes = [];
    buffer = None;
  }

(* SFQ with the tracer fully attached: wrapper for arrivals/dequeues
   (v(t) sampled at each dequeue), tag hook for eq. 4-5 assignments. *)
let traced_sfq ?capacity (w : Workload.t) =
  let core = Sfq.create (Weights.of_list w.weights) in
  let tracer = Tracer.create ?capacity () in
  Sfq.set_tag_hook core ~active:(Tracer.active_flag tracer) (Tracer.tag_hook tracer);
  let sched = Tracer.wrap ~vtime:(fun () -> Sfq.vtime core) tracer (Sfq.sched core) in
  (tracer, sched)

(* ------------------------------------------------------------------ *)
(* Ring semantics                                                       *)

let test_ring_basic () =
  let t = Tracer.create ~capacity:8 () in
  check_int "capacity" 8 (Tracer.capacity t);
  for i = 1 to 5 do
    Tracer.record_arrival t ~now:(float_of_int i) (pkt ~flow:0 ~seq:i ~len:100 ())
  done;
  check_int "length" 5 (Tracer.length t);
  check_int "total" 5 (Tracer.total t);
  check_int "dropped" 0 (Tracer.dropped t);
  List.iteri
    (fun i (e : Event.t) ->
      check_float "oldest first" (float_of_int (i + 1)) e.time;
      check_int "seq" (i + 1) e.seq)
    (Tracer.to_list t);
  let via_iter = ref [] in
  Tracer.iter t ~f:(fun e -> via_iter := e :: !via_iter);
  check_int "iter agrees with to_list" 5 (List.length !via_iter);
  (* vtime is NaN on arrivals, so compare identifying fields, not
     whole records *)
  Alcotest.(check bool)
    "get agrees with iter" true
    (List.for_all2
       (fun (a : Event.t) (b : Event.t) ->
         (a.kind, a.time, a.flow, a.seq, a.len) = (b.kind, b.time, b.flow, b.seq, b.len))
       (List.rev !via_iter)
       (List.init 5 (Tracer.get t)))

let test_ring_overwrite () =
  let t = Tracer.create ~capacity:3 () in
  for i = 1 to 7 do
    Tracer.record_arrival t ~now:(float_of_int i) (pkt ~flow:0 ~seq:i ~len:100 ())
  done;
  check_int "length capped" 3 (Tracer.length t);
  check_int "total keeps counting" 7 (Tracer.total t);
  check_int "dropped = total - length" 4 (Tracer.dropped t);
  (* the retained window is the newest 3, still oldest-first *)
  Alcotest.(check (list int)) "newest window, oldest first" [ 5; 6; 7 ]
    (List.map (fun (e : Event.t) -> e.seq) (Tracer.to_list t));
  check_bool "get out of range raises" true
    (try
       ignore (Tracer.get t 3);
       false
     with Invalid_argument _ -> true)

let test_ring_clear () =
  let t = Tracer.create ~capacity:4 () in
  for i = 1 to 6 do
    Tracer.record_arrival t ~now:0.0 (pkt ~flow:0 ~seq:i ~len:100 ())
  done;
  Tracer.clear t;
  check_int "length after clear" 0 (Tracer.length t);
  check_int "total after clear" 0 (Tracer.total t);
  Tracer.record_arrival t ~now:1.0 (pkt ~flow:1 ~seq:1 ~len:100 ());
  check_int "records again" 1 (Tracer.length t)

let test_disabled_noop () =
  let t = Tracer.disabled () in
  check_bool "starts disabled" false (Tracer.enabled t);
  Tracer.record_arrival t ~now:0.0 (pkt ~flow:0 ~seq:1 ~len:100 ());
  Tracer.record_idle t ~now:0.0;
  check_int "nothing recorded" 0 (Tracer.total t);
  (* active_flag is the live cell set_enabled flips, not a copy *)
  let flag = Tracer.active_flag t in
  Tracer.set_enabled t true;
  check_bool "flag follows set_enabled" true !flag;
  flag := false;
  check_bool "set_enabled follows flag" false (Tracer.enabled t)

(* ------------------------------------------------------------------ *)
(* Wrapper                                                              *)

let test_wrap_events () =
  let t = Tracer.create () in
  let sched = Tracer.wrap ~vtime:(fun () -> 42.0) t (fifo ()) in
  sched.Sched.enqueue ~now:0.0 (pkt ~flow:3 ~seq:1 ~len:1000 ());
  sched.Sched.enqueue ~now:0.5 (pkt ~flow:4 ~seq:1 ~len:2000 ());
  check_int "size passes through" 2 (sched.Sched.size ());
  check_int "backlog passes through" 1 (sched.Sched.backlog 3);
  ignore (sched.Sched.dequeue ~now:1.0);
  ignore (sched.Sched.dequeue ~now:2.0);
  Alcotest.(check bool) "empty poll" true (sched.Sched.dequeue ~now:3.0 = None);
  let evs = Tracer.to_list t in
  Alcotest.(check (list string)) "event sequence"
    [ "busy"; "arrival"; "arrival"; "dequeue"; "dequeue"; "idle" ]
    (List.map (fun (e : Event.t) -> Event.kind_to_string e.kind) evs);
  List.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Dequeue -> check_float "v sampled at dequeue" 42.0 e.vtime
      | Event.Arrival -> check_bool "v not sampled at arrival" true (Float.is_nan e.vtime)
      | Event.Busy | Event.Idle -> check_int "no flow on transitions" (-1) e.flow
      | Event.Tag -> Alcotest.fail "no tag events without a hook"
      | Event.Drop -> Alcotest.fail "no drops without evictions")
    evs

let test_wrap_transparent () =
  (* Same arrival sequence through a bare SFQ and a traced one: the
     wrapper must not change what the scheduler emits. A disabled
     tracer must additionally leave the ring untouched. *)
  let w = List.hd (Workload.deterministic_pool ~seed:11 ~n:1 ()) in
  let drive sched =
    let seqs = Hashtbl.create 8 in
    List.iter
      (fun (a : Workload.arrival) ->
        let seq = 1 + (Hashtbl.find_opt seqs a.flow |> Option.value ~default:0) in
        Hashtbl.replace seqs a.flow seq;
        sched.Sched.enqueue ~now:a.at
          (pkt ?rate:a.rate ~born:a.at ~flow:a.flow ~seq ~len:a.len ()))
      w.arrivals;
    let out = ref [] in
    let rec drain () =
      match sched.Sched.dequeue ~now:1e9 with
      | None -> ()
      | Some p ->
        out := (p.Packet.flow, p.Packet.seq) :: !out;
        drain ()
    in
    drain ();
    List.rev !out
  in
  let bare = drive (Sfq.sched (Sfq.create (Weights.of_list w.weights))) in
  let tracer = Tracer.create () in
  Tracer.set_enabled tracer false;
  let core = Sfq.create (Weights.of_list w.weights) in
  Sfq.set_tag_hook core ~active:(Tracer.active_flag tracer) (Tracer.tag_hook tracer);
  let traced = drive (Tracer.wrap ~vtime:(fun () -> Sfq.vtime core) tracer (Sfq.sched core)) in
  Alcotest.(check (list (pair int int))) "identical departure order" bare traced;
  check_int "disabled tracer recorded nothing" 0 (Tracer.total tracer)

(* ------------------------------------------------------------------ *)
(* Tag hooks                                                            *)

let test_tag_hook_matches_enqueue_tagged () =
  let core = Sfq.create (Weights.of_list [ (0, 500.0); (1, 250.0) ]) in
  let t = Tracer.create () in
  Sfq.set_tag_hook core (Tracer.tag_hook t);
  let v_before = Sfq.vtime core in
  let stag, ftag = Sfq.enqueue_tagged core ~now:0.25 (pkt ~flow:1 ~seq:1 ~len:1000 ()) in
  let e = Tracer.get t 0 in
  check_str "kind" "tag" (Event.kind_to_string e.Event.kind);
  check_float "event time" 0.25 e.Event.time;
  check_int "flow" 1 e.Event.flow;
  check_int "seq" 1 e.Event.seq;
  check_int "len" 1000 e.Event.len;
  check_float "start tag matches return" stag e.Event.stag;
  check_float "finish tag matches return" ftag e.Event.ftag;
  check_float "eq. 5: F = S + l/r" (stag +. (1000.0 /. 250.0)) ftag;
  check_float "v(t) at assignment" v_before e.Event.vtime

let test_tag_hook_gating () =
  let core = Sfq.create (Weights.of_list [ (0, 1.0) ]) in
  let t = Tracer.create () in
  Sfq.set_tag_hook core ~active:(Tracer.active_flag t) (Tracer.tag_hook t);
  Tracer.set_enabled t false;
  ignore (Sfq.enqueue_tagged core ~now:0.0 (pkt ~flow:0 ~seq:1 ~len:100 ()));
  check_int "hook gated off" 0 (Tracer.total t);
  Tracer.set_enabled t true;
  ignore (Sfq.enqueue_tagged core ~now:1.0 (pkt ~flow:0 ~seq:2 ~len:100 ()));
  check_int "hook live again" 1 (Tracer.total t);
  check_int "the post-enable packet" 2 (Tracer.get t 0).Event.seq;
  Sfq.clear_tag_hook core;
  ignore (Sfq.enqueue_tagged core ~now:2.0 (pkt ~flow:0 ~seq:3 ~len:100 ()));
  check_int "cleared hook never fires" 1 (Tracer.total t)

let test_hsfq_class_hook () =
  let h = Hsfq.create () in
  let leaf0 = Hsfq.add_leaf h ~parent:(Hsfq.root h) ~weight:1.0 (fifo ()) in
  let leaf1 = Hsfq.add_leaf h ~parent:(Hsfq.root h) ~weight:2.0 (fifo ()) in
  Hsfq.set_classifier h (Hsfq.classifier_by_flow [ (0, leaf0); (1, leaf1) ]);
  let t = Tracer.create () in
  Hsfq.set_tag_hook h ~active:(Tracer.active_flag t) (Tracer.class_tag_hook t);
  Hsfq.enqueue h ~now:0.0 (pkt ~flow:0 ~seq:1 ~len:1000 ());
  Hsfq.enqueue h ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:1000 ());
  ignore (Hsfq.dequeue h ~now:0.0);
  ignore (Hsfq.dequeue h ~now:0.0);
  let tags =
    Tracer.to_list t
    |> List.filter (fun (e : Event.t) -> e.kind = Event.Tag)
    |> List.map (fun (e : Event.t) -> (e.flow, e.ftag -. e.stag))
    |> List.sort compare
  in
  (* flow field carries the class id; F - S = l/w per edge (§3) *)
  Alcotest.(check (list (pair int (float 1e-9))))
    "one emission per class, F-S = l/w"
    [ (Hsfq.class_id h leaf0, 1000.0); (Hsfq.class_id h leaf1, 500.0) ]
    tags

(* ------------------------------------------------------------------ *)
(* Exporters                                                            *)

let jnum = function Bench_json.Num f -> f | _ -> Alcotest.fail "expected JSON number"
let jstr = function Bench_json.Str s -> s | _ -> Alcotest.fail "expected JSON string"
let jlist = function Bench_json.List l -> l | _ -> Alcotest.fail "expected JSON array"

let run_traced ?capacity () =
  let w = rr_workload ~flows:3 ~pkts:5 ~len:1000 in
  let tracer, sched = traced_sfq ?capacity w in
  let outcome = Run.fixed_rate ~sched ~monitors:[] w in
  check_int "all packets depart" 15 outcome.Run.departures;
  tracer

let test_kind_string_roundtrip () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Event.kind_to_string k) true
        (Event.kind_of_string (Event.kind_to_string k) = Some k))
    [ Event.Arrival; Event.Tag; Event.Dequeue; Event.Busy; Event.Idle ]

let test_jsonl_roundtrip () =
  let tracer = run_traced () in
  let lines =
    Export.jsonl tracer |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  check_int "one line per retained event" (Tracer.length tracer) (List.length lines);
  List.iter2
    (fun line (e : Event.t) ->
      let j = Bench_json.parse line in
      check_str "ev" (Event.kind_to_string e.kind) (jstr (Bench_json.field "ev" j));
      check_float "t" e.time (jnum (Bench_json.field "t" j));
      check_int "flow" e.flow (int_of_float (jnum (Bench_json.field "flow" j)));
      check_int "seq" e.seq (int_of_float (jnum (Bench_json.field "seq" j)));
      check_int "len" e.len (int_of_float (jnum (Bench_json.field "len" j)));
      if e.kind = Event.Tag then begin
        check_float "stag" e.stag (jnum (Bench_json.field "stag" j));
        check_float "ftag" e.ftag (jnum (Bench_json.field "ftag" j));
        check_float "v" e.vtime (jnum (Bench_json.field "v" j))
      end;
      if Float.is_nan e.vtime then
        check_bool "NaN v omitted" true
          (match Bench_json.field "v" j with
          | exception Bench_json.Bad _ -> true
          | _ -> false))
    lines (Tracer.to_list tracer)

let test_jsonl_stream_matches_ring_dump () =
  (* The streaming sink and an offline dump of the same (unwrapped)
     ring must produce byte-identical JSONL. *)
  let path = Filename.temp_file "sfq_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let t = Tracer.create ~sink:(Tracer.Jsonl oc) () in
      for i = 1 to 4 do
        Tracer.record_arrival t ~now:(float_of_int i) (pkt ~flow:0 ~seq:i ~len:10 ())
      done;
      close_out oc;
      let ic = open_in path in
      let n = in_channel_length ic in
      let streamed = really_input_string ic n in
      close_in ic;
      check_str "stream = dump" (Export.jsonl t) streamed)

let test_chrome_structure () =
  let tracer = run_traced () in
  let j = Bench_json.parse (Export.chrome ~name:"unit" tracer) in
  let events = jlist (Bench_json.field "traceEvents" j) in
  let phs = List.map (fun e -> jstr (Bench_json.field "ph" e)) events in
  check_bool "only known phases" true
    (List.for_all (fun p -> List.mem p [ "M"; "X"; "C"; "i" ]) phs);
  List.iter
    (fun e -> check_float "single process" 1.0 (jnum (Bench_json.field "pid" e)))
    events;
  let named ph name =
    List.filter
      (fun e ->
        jstr (Bench_json.field "ph" e) = ph && jstr (Bench_json.field "name" e) = name)
      events
  in
  check_int "process_name metadata" 1 (List.length (named "M" "process_name"));
  (* one thread track for the scheduler + one per flow *)
  let threads = named "M" "thread_name" in
  check_int "thread tracks" 4 (List.length threads);
  Alcotest.(check (list int)) "tids: scheduler then flow+1" [ 0; 1; 2; 3 ]
    (List.sort compare
       (List.map (fun e -> int_of_float (jnum (Bench_json.field "tid" e))) threads));
  (* every departed packet is a complete slice on its flow's track,
     with non-negative duration and the real tags as args *)
  let slices = List.filter (fun e -> jstr (Bench_json.field "ph" e) = "X") events in
  check_int "one slice per departed packet" 15 (List.length slices);
  List.iter
    (fun e ->
      check_bool "slice on a flow track" true
        (jnum (Bench_json.field "tid" e) >= 1.0);
      check_bool "non-negative duration" true (jnum (Bench_json.field "dur" e) >= 0.0);
      let args = Bench_json.field "args" e in
      check_bool "tags attached" true
        (jnum (Bench_json.field "ftag" args) >= jnum (Bench_json.field "stag" args)))
    slices;
  (* v(t) appears as a counter track with non-decreasing values
     (tag_monotone, busy period never ends in this run) *)
  let vs = List.map (fun e -> jnum (Bench_json.field "v" (Bench_json.field "args" e))) (named "C" "v(t)") in
  check_bool "v(t) counter points exist" true (vs <> []);
  check_bool "v(t) non-decreasing" true
    (fst (List.fold_left (fun (ok, prev) v -> (ok && v >= prev, v)) (true, neg_infinity) vs))

let test_chrome_ring_wraparound () =
  (* A tiny ring loses old arrivals: their dequeues must degrade to
     instants, and the document must stay valid. *)
  let tracer = run_traced ~capacity:8 () in
  check_int "ring clipped" 8 (Tracer.length tracer);
  check_bool "history was lost" true (Tracer.dropped tracer > 0);
  let j = Bench_json.parse (Export.chrome tracer) in
  let events = jlist (Bench_json.field "traceEvents" j) in
  let orphan_dequeues =
    List.filter
      (fun e ->
        jstr (Bench_json.field "ph" e) = "i"
        && (match Bench_json.field "cat" e with
           | Bench_json.Str "packet" -> true
           | _ | (exception Bench_json.Bad _) -> false))
      events
  in
  check_bool "orphaned dequeues become instants" true (orphan_dequeues <> [])

(* ------------------------------------------------------------------ *)
(* Oracle cross-check                                                   *)

let test_trace_matches_service_log () =
  (* Drive a pool workload through a netsim server with both observers
     attached: the per-flow bits the trace says were served must equal
     W_f as accounted by Service_log — the measurement substrate every
     fairness number in the repo rests on. *)
  let open Sfq_netsim in
  let w = List.hd (Workload.deterministic_pool ~seed:7 ~n:1 ()) in
  let tracer, sched = traced_sfq w in
  let sim = Sim.create () in
  let server =
    Server.create sim ~name:"srv" ~rate:(Rate_process.constant w.capacity) ~sched ()
  in
  let log = Sfq_analysis.Service_log.attach server in
  let seqs = Hashtbl.create 8 in
  List.iter
    (fun (a : Workload.arrival) ->
      let seq = 1 + (Hashtbl.find_opt seqs a.flow |> Option.value ~default:0) in
      Hashtbl.replace seqs a.flow seq;
      Sim.schedule sim ~at:a.at (fun () ->
          Server.inject server (pkt ?rate:a.rate ~born:a.at ~flow:a.flow ~seq ~len:a.len ())))
    w.arrivals;
  Sim.run_all sim ();
  check_int "run drained" (List.length w.arrivals) (Server.departed server);
  check_int "no ring loss" 0 (Tracer.dropped tracer);
  let traced_bits = Hashtbl.create 8 in
  Tracer.iter tracer ~f:(fun (e : Event.t) ->
      if e.kind = Event.Dequeue then
        Hashtbl.replace traced_bits e.flow
          (e.len + (Hashtbl.find_opt traced_bits e.flow |> Option.value ~default:0)));
  let until = Sim.now sim +. 1.0 in
  let flows = Sfq_analysis.Service_log.flows log in
  check_bool "log saw the flows" true (flows <> []);
  List.iter
    (fun f ->
      check_float
        (Printf.sprintf "flow %d: trace bits = W_f" f)
        (Sfq_analysis.Service_log.service log f ~t1:0.0 ~t2:until)
        (float_of_int (Hashtbl.find_opt traced_bits f |> Option.value ~default:0)))
    flows

(* ------------------------------------------------------------------ *)
(* Summary                                                              *)

let test_summary_per_flow () =
  let tracer = run_traced () in
  let rows = Summary.per_flow tracer in
  Alcotest.(check (list int)) "flows ascending" [ 0; 1; 2 ]
    (List.map (fun (r : Summary.flow_summary) -> r.flow) rows);
  List.iter
    (fun (r : Summary.flow_summary) ->
      check_int "all departed" 5 r.departed;
      check_int "none queued" 0 r.queued;
      check_bool "backlog reached 1" true (r.max_backlog >= 1);
      check_bool "quantiles ordered" true
        (0.0 <= r.delay_p50 && r.delay_p50 <= r.delay_p99 && r.delay_p99 <= r.delay_max);
      check_bool "tag lag non-negative" true (r.tag_lag_max >= 0.0))
    rows;
  let rendered = Summary.render tracer in
  check_bool "render is a table with one row per flow" true
    (String.length rendered > 0
    && List.length (String.split_on_char '\n' rendered) >= 4)

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)

let find_sample m name flow =
  match
    List.find_opt
      (fun (s : Metrics.sample) -> s.name = name && s.flow = flow)
      (Metrics.snapshot m)
  with
  | Some s -> s.value
  | None -> Alcotest.fail (Printf.sprintf "no sample %s" name)

let counter_of m name flow =
  match find_sample m name flow with
  | Metrics.Counter v -> v
  | _ -> Alcotest.fail (name ^ " is not a counter")

let gauge_of m name flow =
  match find_sample m name flow with
  | Metrics.Gauge { value; max } -> (value, max)
  | _ -> Alcotest.fail (name ^ " is not a gauge")

let histo_of m name flow =
  match find_sample m name flow with
  | Metrics.Histo h -> h
  | _ -> Alcotest.fail (name ^ " is not a histogram")

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "pkts" in
  Metrics.incr c;
  Metrics.add c 2.5;
  check_float "counter accumulates" 3.5 (Metrics.counter_value c);
  Metrics.incr (Metrics.counter m "pkts");
  check_float "re-register returns same instrument" 4.5 (Metrics.counter_value c);
  check_bool "negative add rejected" true
    (try
       Metrics.add c (-1.0);
       false
     with Invalid_argument _ -> true);
  let g = Metrics.gauge m ~flow:2 "depth" in
  Metrics.set_gauge g 3.0;
  Metrics.set_gauge g 1.0;
  check_float "gauge is last value" 1.0 (Metrics.gauge_value g);
  check_float "gauge keeps high-water mark" 3.0 (Metrics.gauge_max g);
  (* flow label distinguishes instruments of the same name *)
  Metrics.incr (Metrics.counter m ~flow:0 "pkts");
  check_float "labelled series is separate" 1.0
    (Metrics.counter_value (Metrics.counter m ~flow:0 "pkts"));
  check_float "unlabelled untouched" 4.5 (Metrics.counter_value c);
  Alcotest.(check (list (pair string (option int))))
    "snapshot sorted by (name, flow), unlabelled first"
    [ ("depth", Some 2); ("pkts", None); ("pkts", Some 0) ]
    (List.map (fun (s : Metrics.sample) -> (s.name, s.flow)) (Metrics.snapshot m));
  check_bool "render smoke" true (String.length (Metrics.render m) > 0)

let test_metrics_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~lo:0.0 ~hi:10.0 ~bins:10 "delay" in
  Metrics.observe m ~lo:0.0 ~hi:10.0 ~bins:10 "delay" 4.5;
  Metrics.observe m ~lo:0.0 ~hi:10.0 ~bins:10 "delay" 5.5;
  check_int "observe feeds the registered histogram" 2 (Sfq_util.Histogram.count h);
  (* re-registering with a different shape returns the existing one *)
  let h' = Metrics.histogram m ~lo:0.0 ~hi:99.0 ~bins:3 "delay" in
  check_int "shape of first registration wins" 2 (Sfq_util.Histogram.count h');
  check_bool "quantile answers from the data" true
    (let q = Sfq_util.Histogram.quantile h 0.5 in
     q >= 4.0 && q <= 6.0)

let test_server_metrics () =
  let open Sfq_netsim in
  let sim = Sim.create () in
  let m = Metrics.create () in
  let server =
    Server.create sim ~name:"srv" ~rate:(Rate_process.constant 1000.0) ~sched:(fifo ())
      ~metrics:m ()
  in
  (* 2 flows x 2 packets, all at t=0: service takes 1 s each, so
     flow 0's packets wait 0 s and 2 s, flow 1's 1 s and 3 s *)
  List.iter
    (fun (flow, seq) ->
      Sim.schedule sim ~at:0.0 (fun () ->
          Server.inject server (pkt ~flow ~seq ~len:1000 ())))
    [ (0, 1); (1, 1); (0, 2); (1, 2) ];
  Sim.run_all sim ();
  check_float "injected total" 4.0 (counter_of m "srv.injected" None);
  check_float "injected flow 0" 2.0 (counter_of m "srv.injected" (Some 0));
  check_float "departed total" 4.0 (counter_of m "srv.departed" None);
  check_float "bits served" 4000.0 (counter_of m "srv.bits" None);
  let value, max = gauge_of m "srv.backlog" (Some 0) in
  check_float "backlog drains to zero" 0.0 value;
  check_float "backlog high-water mark" 2.0 max;
  check_int "delay histogram fed per departure" 2
    (Sfq_util.Histogram.count (histo_of m "srv.delay" (Some 1)))

let test_sim_metrics () =
  let open Sfq_netsim in
  let sim = Sim.create () in
  let m = Metrics.create () in
  Sim.set_metrics sim m ~prefix:"sim";
  List.iter (fun at -> Sim.schedule sim ~at (fun () -> ())) [ 1.0; 2.0; 3.0 ];
  Sim.run_all sim ();
  check_float "events counted" (float_of_int (Sim.events_fired sim))
    (counter_of m "sim.events" None);
  check_float "clock gauge at last event" 3.0 (fst (gauge_of m "sim.now" None));
  check_float "pending drained" 0.0 (fst (gauge_of m "sim.pending" None))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "tracer",
        [
          Alcotest.test_case "ring basics" `Quick test_ring_basic;
          Alcotest.test_case "ring overwrite" `Quick test_ring_overwrite;
          Alcotest.test_case "clear" `Quick test_ring_clear;
          Alcotest.test_case "disabled no-op + active_flag" `Quick test_disabled_noop;
          Alcotest.test_case "wrap events" `Quick test_wrap_events;
          Alcotest.test_case "wrap transparency" `Quick test_wrap_transparent;
        ] );
      ( "tag hooks",
        [
          Alcotest.test_case "matches enqueue_tagged" `Quick
            test_tag_hook_matches_enqueue_tagged;
          Alcotest.test_case "active gating" `Quick test_tag_hook_gating;
          Alcotest.test_case "hsfq class hook" `Quick test_hsfq_class_hook;
        ] );
      ( "export",
        [
          Alcotest.test_case "kind round-trip" `Quick test_kind_string_roundtrip;
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "jsonl stream = ring dump" `Quick
            test_jsonl_stream_matches_ring_dump;
          Alcotest.test_case "chrome structure" `Quick test_chrome_structure;
          Alcotest.test_case "chrome ring wrap-around" `Quick test_chrome_ring_wraparound;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "trace bits = Service_log W_f" `Quick
            test_trace_matches_service_log;
        ] );
      ("summary", [ Alcotest.test_case "per-flow" `Quick test_summary_per_flow ]);
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "server wiring" `Quick test_server_metrics;
          Alcotest.test_case "sim wiring" `Quick test_sim_metrics;
        ] );
    ]
