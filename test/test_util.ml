(* Unit and property tests for sfq.util: heap, rng, stats, running_min,
   vec, text_table. *)

open Sfq_util

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Ds_heap                                                              *)

let heap_of list =
  let h = Ds_heap.create ~cmp:compare () in
  List.iter (Ds_heap.add h) list;
  h

let test_heap_empty () =
  let h = Ds_heap.create ~cmp:compare () in
  check_bool "empty" true (Ds_heap.is_empty h);
  check_int "length" 0 (Ds_heap.length h);
  check_bool "min_elt none" true (Ds_heap.min_elt h = None);
  check_bool "pop none" true (Ds_heap.pop_min h = None)

let test_heap_pop_min_exn_empty () =
  let h = Ds_heap.create ~cmp:compare () in
  Alcotest.check_raises "raises" (Invalid_argument "Ds_heap.pop_min_exn: empty heap")
    (fun () -> ignore (Ds_heap.pop_min_exn h))

let test_heap_sorted_drain () =
  let h = heap_of [ 5; 1; 4; 1; 3; 9; 2 ] in
  let rec drain acc =
    match Ds_heap.pop_min h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let test_heap_min_elt_stable () =
  let h = heap_of [ 3; 1; 2 ] in
  check_bool "min is 1" true (Ds_heap.min_elt h = Some 1);
  check_int "length unchanged" 3 (Ds_heap.length h)

let test_heap_to_sorted_list_preserves () =
  let h = heap_of [ 4; 2; 7 ] in
  Alcotest.(check (list int)) "sorted view" [ 2; 4; 7 ] (Ds_heap.to_sorted_list h);
  check_int "heap intact" 3 (Ds_heap.length h);
  check_bool "min intact" true (Ds_heap.min_elt h = Some 2)

let test_heap_clear () =
  let h = heap_of [ 1; 2; 3 ] in
  Ds_heap.clear h;
  check_bool "empty after clear" true (Ds_heap.is_empty h);
  Ds_heap.add h 42;
  check_bool "usable after clear" true (Ds_heap.pop_min h = Some 42)

let test_heap_iter_counts () =
  let h = heap_of [ 1; 2; 3; 4 ] in
  let sum = ref 0 in
  Ds_heap.iter h ~f:(fun x -> sum := !sum + x);
  check_int "iter sum" 10 !sum

let test_heap_custom_cmp () =
  (* Max-heap via inverted comparison. *)
  let h = Ds_heap.create ~cmp:(fun a b -> compare b a) () in
  List.iter (Ds_heap.add h) [ 1; 5; 3 ];
  check_bool "max first" true (Ds_heap.pop_min h = Some 5)

let prop_heap_drains_sorted =
  QCheck.Test.make ~name:"heap drains sorted (any int list)" ~count:300
    QCheck.(list int)
    (fun l ->
      let h = heap_of l in
      let rec drain acc =
        match Ds_heap.pop_min h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare l)

let prop_heap_is_permutation =
  QCheck.Test.make ~name:"heap returns a permutation" ~count:300
    QCheck.(list small_int)
    (fun l ->
      let h = heap_of l in
      let rec drain acc =
        match Ds_heap.pop_min h with None -> acc | Some x -> drain (x :: acc)
      in
      List.sort compare (drain []) = List.sort compare l)

let prop_heap_interleaved =
  (* Interleave adds and pops; the pop sequence must be the same as a
     reference implementation over sorted lists. *)
  QCheck.Test.make ~name:"heap matches reference under interleaving" ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Ds_heap.create ~cmp:compare () in
      let reference = ref [] in
      List.for_all
        (fun (is_pop, x) ->
          if is_pop then begin
            let expected =
              match List.sort compare !reference with
              | [] -> None
              | y :: rest ->
                reference := rest;
                Some y
            in
            (* [reference] was reassigned only when non-empty. *)
            Ds_heap.pop_min h = expected
          end
          else begin
            Ds_heap.add h x;
            reference := x :: !reference;
            true
          end)
        ops)

(* ------------------------------------------------------------------ *)
(* Fheap                                                                *)

let test_fheap_empty () =
  let h : int Fheap.t = Fheap.create () in
  check_int "length" 0 (Fheap.length h);
  check_bool "is_empty" true (Fheap.is_empty h);
  check_bool "pop" true (Fheap.pop h = None);
  check_bool "min" true (Fheap.min h = None);
  Alcotest.check_raises "min_key_exn" (Invalid_argument "Fheap.min_key_exn: empty heap")
    (fun () -> ignore (Fheap.min_key_exn h))

let test_fheap_min_agrees_with_pop () =
  let h = Fheap.create ~capacity:1 () in
  List.iteri
    (fun i k -> Fheap.add h ~key:k ~tie:0.0 ~uid:i (int_of_float k))
    [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  check_float "min_key_exn" 1.0 (Fheap.min_key_exn h);
  check_bool "min" true (Fheap.min h = Some (1.0, 1));
  check_bool "min_elt" true (Fheap.min_elt h = Some 1);
  check_bool "pop" true (Fheap.pop h = Some (1.0, 1));
  check_bool "pop_elt" true (Fheap.pop_elt h = Some 2);
  check_int "length" 3 (Fheap.length h);
  Fheap.clear h;
  check_bool "cleared" true (Fheap.is_empty h)

let fheap_entries_gen =
  (* Small (key, tie) ranges force plenty of collisions at every
     level of the lexicographic order. *)
  QCheck.Gen.(list_size (0 -- 80) (pair (0 -- 5) (0 -- 3)))

let fheap_entries_print = QCheck.Print.(list (pair int int))

let fheap_drain h =
  let rec go acc =
    match Fheap.pop h with None -> List.rev acc | Some (_, v) -> go (v :: acc)
  in
  go []

let prop_fheap_pop_order_matches_reference =
  (* Pop order is ascending (key, tie, uid) — the reference is a plain
     sort of the insertion triples. *)
  QCheck.Test.make ~name:"fheap: drains in (key, tie, uid) order" ~count:300
    (QCheck.make fheap_entries_gen ~print:fheap_entries_print)
    (fun entries ->
      let h = Fheap.create ~capacity:1 () in
      List.iteri
        (fun uid (k, t) ->
          Fheap.add h ~key:(float_of_int k) ~tie:(float_of_int t) ~uid uid)
        entries;
      let reference =
        List.mapi (fun uid (k, t) -> (k, t, uid)) entries
        |> List.sort compare
        |> List.map (fun (_, _, uid) -> uid)
      in
      fheap_drain h = reference)

let prop_fheap_tie_uid_stability =
  (* With key and tie fully degenerate, uid alone must make the order
     total: pops come out in insertion order regardless of heap
     internals. *)
  QCheck.Test.make ~name:"fheap: equal keys and ties pop in uid order" ~count:300
    QCheck.(0 -- 60)
    (fun n ->
      let h = Fheap.create () in
      for uid = 0 to n - 1 do
        Fheap.add h ~key:7.0 ~tie:2.5 ~uid uid
      done;
      fheap_drain h = List.init n (fun i -> i))

let prop_fheap_interleaved =
  QCheck.Test.make ~name:"fheap: matches sorted-list model under interleaving"
    ~count:200
    QCheck.(list (pair bool (pair (0 -- 5) (0 -- 3))))
    (fun ops ->
      let h = Fheap.create () in
      let model = ref [] in
      let uid = ref 0 in
      List.for_all
        (fun (is_pop, (k, t)) ->
          if is_pop then begin
            let expected =
              match List.sort compare !model with
              | [] -> None
              | ((key, _, u) as min) :: _ ->
                model := List.filter (fun x -> x <> min) !model;
                Some (float_of_int key, u)
            in
            Fheap.pop h = expected
          end
          else begin
            Fheap.add h ~key:(float_of_int k) ~tie:(float_of_int t) ~uid:!uid !uid;
            model := (k, t, !uid) :: !model;
            incr uid;
            true
          end)
        ops
      && Fheap.length h = List.length !model)

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check_bool "different streams" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  check_bool "split differs from parent continuation" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_float_bounds () =
  let r = Rng.create 99 in
  for _ = 1 to 1000 do
    let x = Rng.float r 3.5 in
    check_bool "in [0,3.5)" true (x >= 0.0 && x < 3.5)
  done

let test_rng_uniform_bounds () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.uniform r ~lo:(-2.0) ~hi:5.0 in
    check_bool "in [-2,5)" true (x >= -2.0 && x < 5.0)
  done

let test_rng_int_bounds () =
  let r = Rng.create 17 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    check_bool "in [0,10)" true (x >= 0 && x < 10)
  done

let test_rng_int_all_values_hit () =
  let r = Rng.create 23 in
  let seen = Array.make 6 false in
  for _ = 1 to 600 do
    seen.(Rng.int r 6) <- true
  done;
  Array.iteri (fun i b -> check_bool (Printf.sprintf "value %d seen" i) true b) seen

let test_rng_exponential_mean () =
  let r = Rng.create 31 in
  let s = Stats.create () in
  for _ = 1 to 50_000 do
    Stats.add s (Rng.exponential r ~mean:2.0)
  done;
  check_bool "mean ~2" true (Float.abs (Stats.mean s -. 2.0) < 0.05)

let test_rng_gaussian_moments () =
  let r = Rng.create 37 in
  let s = Stats.create () in
  for _ = 1 to 50_000 do
    Stats.add s (Rng.gaussian r ~mu:1.0 ~sigma:2.0)
  done;
  check_bool "mean ~1" true (Float.abs (Stats.mean s -. 1.0) < 0.05);
  check_bool "stddev ~2" true (Float.abs (Stats.stddev s -. 2.0) < 0.05)

let test_rng_lognormal_positive () =
  let r = Rng.create 41 in
  for _ = 1 to 1000 do
    check_bool "positive" true (Rng.lognormal r ~mu:0.0 ~sigma:0.5 > 0.0)
  done

let test_rng_laplace_symmetry () =
  let r = Rng.create 43 in
  let s = Stats.create () in
  for _ = 1 to 50_000 do
    Stats.add s (Rng.laplace r ~mu:0.0 ~b:1.0)
  done;
  (* Laplace(0,1): mean 0, variance 2. *)
  check_bool "mean ~0" true (Float.abs (Stats.mean s) < 0.03);
  check_bool "variance ~2" true (Float.abs (Stats.variance s -. 2.0) < 0.1)

let test_rng_invalid_args () =
  let r = Rng.create 1 in
  Alcotest.check_raises "float bound" (Invalid_argument "Rng.float: bound must be positive")
    (fun () -> ignore (Rng.float r 0.0));
  Alcotest.check_raises "int bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0));
  Alcotest.check_raises "exp mean"
    (Invalid_argument "Rng.exponential: mean must be positive") (fun () ->
      ignore (Rng.exponential r ~mean:(-1.0)))

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)

let test_stats_empty () =
  let s = Stats.create () in
  check_int "count" 0 (Stats.count s);
  check_float "mean" 0.0 (Stats.mean s);
  check_float "variance" 0.0 (Stats.variance s)

let test_stats_known_values () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_int "count" 8 (Stats.count s);
  check_float "mean" 5.0 (Stats.mean s);
  (* Sample variance with n-1 = 32/7. *)
  check_float "variance" (32.0 /. 7.0) (Stats.variance s);
  check_float "min" 2.0 (Stats.min_value s);
  check_float "max" 9.0 (Stats.max_value s);
  check_float "total" 40.0 (Stats.total s)

let test_stats_single () =
  let s = Stats.create () in
  Stats.add s 3.0;
  check_float "mean" 3.0 (Stats.mean s);
  check_float "variance (n<2)" 0.0 (Stats.variance s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  List.iter
    (fun x ->
      Stats.add whole x;
      if x < 5.0 then Stats.add a x else Stats.add b x)
    [ 1.0; 2.0; 3.0; 7.0; 8.0; 9.0; 4.0; 6.0 ];
  let m = Stats.merge a b in
  check_int "count" (Stats.count whole) (Stats.count m);
  check_bool "mean" true (Float.abs (Stats.mean whole -. Stats.mean m) < 1e-9);
  check_bool "variance" true (Float.abs (Stats.variance whole -. Stats.variance m) < 1e-9)

let test_stats_merge_empty () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add b 5.0;
  let m = Stats.merge a b in
  check_float "mean" 5.0 (Stats.mean m);
  check_int "count" 1 (Stats.count m)

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p50" 3.0 (Stats.percentile xs 50.0);
  check_float "p100" 5.0 (Stats.percentile xs 100.0);
  check_float "p25" 2.0 (Stats.percentile xs 25.0);
  check_float "median" 3.0 (Stats.median xs)

let test_percentile_interpolates () =
  let xs = [| 10.0; 20.0 |] in
  check_float "p50 interp" 15.0 (Stats.percentile xs 50.0)

let test_percentile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty array")
    (fun () -> ignore (Stats.percentile [||] 50.0));
  Alcotest.check_raises "range" (Invalid_argument "Stats.percentile: p outside [0,100]")
    (fun () -> ignore (Stats.percentile [| 1.0 |] 101.0))

let prop_stats_mean_matches_naive =
  QCheck.Test.make ~name:"welford mean = naive mean" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun l ->
      let s = Stats.create () in
      List.iter (Stats.add s) l;
      let naive = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
      Float.abs (Stats.mean s -. naive) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Running_min                                                          *)

let test_running_min_initial () =
  let t = Running_min.create () in
  check_float "drawdown" 0.0 (Running_min.drawdown t);
  check_bool "headroom inf" true (Running_min.headroom t ~budget:5.0 = infinity)

let test_running_min_monotone_up () =
  let t = Running_min.create () in
  List.iter (Running_min.observe t) [ 0.0; 1.0; 2.0; 3.0 ];
  check_float "drawdown = rise above min" 3.0 (Running_min.drawdown t);
  check_float "headroom" 2.0 (Running_min.headroom t ~budget:5.0)

let test_running_min_vee () =
  let t = Running_min.create () in
  List.iter (Running_min.observe t) [ 5.0; 1.0; 4.0 ];
  check_float "min" 1.0 (Running_min.running_min t);
  check_float "drawdown" 3.0 (Running_min.drawdown t)

let test_running_min_drawdown_keeps_max () =
  let t = Running_min.create () in
  List.iter (Running_min.observe t) [ 0.0; 10.0; -5.0; 0.0 ];
  (* Max rise over running min: 10 - 0 = 10 (later min -5 only affects
     future rises). *)
  check_float "drawdown" 10.0 (Running_min.drawdown t)

(* ------------------------------------------------------------------ *)
(* Vec                                                                  *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get 0" 0 (Vec.get v 0);
  check_int "get 99" 99 (Vec.get v 99);
  check_bool "last" true (Vec.last v = Some 99)

let test_vec_bounds () =
  let v = Vec.create () in
  Vec.push v 1;
  Alcotest.check_raises "oob" (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 1))

let test_vec_iter_fold () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 1; 2; 3 ];
  check_int "fold" 6 (Vec.fold v ~init:0 ~f:( + ));
  let acc = ref [] in
  Vec.iter v ~f:(fun x -> acc := x :: !acc);
  Alcotest.(check (list int)) "iter order" [ 1; 2; 3 ] (List.rev !acc)

let test_vec_to_list_array () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 4; 5 ];
  Alcotest.(check (list int)) "to_list" [ 4; 5 ] (Vec.to_list v);
  Alcotest.(check (array int)) "to_array" [| 4; 5 |] (Vec.to_array v)

let test_vec_clear () =
  let v = Vec.create () in
  Vec.push v 1;
  Vec.clear v;
  check_bool "empty" true (Vec.is_empty v);
  Vec.push v 2;
  check_int "reusable" 2 (Vec.get v 0)

let test_vec_binary_search () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 0.0; 1.0; 2.0; 5.0 ];
  let key x = x in
  check_bool "before first" true (Vec.binary_search_last_le v ~key (-0.5) = None);
  check_bool "exact first" true (Vec.binary_search_last_le v ~key 0.0 = Some 0);
  check_bool "between" true (Vec.binary_search_last_le v ~key 3.0 = Some 2);
  check_bool "past end" true (Vec.binary_search_last_le v ~key 100.0 = Some 3)

let prop_vec_binary_search_matches_linear =
  QCheck.Test.make ~name:"binary search = linear scan" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 30) (float_bound_exclusive 100.0)) (float_bound_exclusive 120.0))
    (fun (l, x) ->
      let sorted = List.sort compare l in
      let v = Vec.create () in
      List.iter (Vec.push v) sorted;
      let linear =
        let rec go i best = function
          | [] -> best
          | y :: rest -> if y <= x then go (i + 1) (Some i) rest else best
        in
        go 0 None sorted
      in
      Vec.binary_search_last_le v ~key:(fun y -> y) x = linear)

(* ------------------------------------------------------------------ *)
(* Histogram                                                            *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Histogram.add h) [ 0.5; 1.9; 2.0; 9.9; 10.5; -1.0 ];
  check_int "count" 6 (Histogram.count h);
  Alcotest.(check (array int)) "bins" [| 3; 1; 0; 0; 2 |] (Histogram.bin_counts h)

let test_histogram_bounds () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  let a, b = Histogram.bin_bounds h 1 in
  check_float "lo" 2.0 a;
  check_float "hi" 4.0 b;
  Alcotest.check_raises "range" (Invalid_argument "Histogram.bin_bounds: out of range")
    (fun () -> ignore (Histogram.bin_bounds h 5))

let test_histogram_render () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2 in
  List.iter (Histogram.add h) [ 0.1; 0.2; 0.8 ];
  let s = Histogram.render ~width:10 h in
  check_int "two lines" 2 (List.length (String.split_on_char '\n' (String.trim s)))

let test_histogram_validation () =
  Alcotest.check_raises "bad args"
    (Invalid_argument "Histogram.create: need lo < hi and bins > 0") (fun () ->
      ignore (Histogram.create ~lo:1.0 ~hi:0.0 ~bins:3))

let test_histogram_quantile_uniform () =
  (* 1000 evenly spread observations: quantiles should track the value
     axis to within one bin width. *)
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:100 in
  for i = 0 to 999 do
    Histogram.add h (10.0 *. (float_of_int i +. 0.5) /. 1000.0)
  done;
  List.iter
    (fun q ->
      let v = Histogram.quantile h q in
      check_bool
        (Printf.sprintf "q=%g gives %g" q v)
        true
        (Float.abs (v -. (10.0 *. q)) <= 0.2))
    [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99 ]

let test_histogram_quantile_edges () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Histogram.add h) [ 1.0; 1.0; 1.0; 9.0 ];
  (* q=0 sits at the left edge of the first occupied bin, q=1 at the
     right edge of the last. *)
  check_float "q=0" 0.0 (Histogram.quantile h 0.0);
  check_float "q=1" 10.0 (Histogram.quantile h 1.0);
  (* three of four observations in bin [0,2): the median interpolates
     inside it. *)
  let med = Histogram.quantile h 0.5 in
  check_bool "median in first bin" true (med >= 0.0 && med <= 2.0);
  Alcotest.check_raises "empty"
    (Invalid_argument "Histogram.quantile: empty histogram") (fun () ->
      ignore (Histogram.quantile (Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2) 0.5));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Histogram.quantile: q outside [0,1]") (fun () ->
      ignore (Histogram.quantile h 1.5))

let test_histogram_merge () =
  let a = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  let b = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Histogram.add a) [ 0.5; 3.0 ];
  List.iter (Histogram.add b) [ 3.5; 9.0; 9.5 ];
  let m = Histogram.merge a b in
  check_int "count" 5 (Histogram.count m);
  Alcotest.(check (array int)) "bins" [| 1; 2; 0; 0; 2 |] (Histogram.bin_counts m);
  (* inputs untouched *)
  check_int "a intact" 2 (Histogram.count a);
  check_int "b intact" 3 (Histogram.count b);
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Histogram.merge: shape mismatch") (fun () ->
      ignore (Histogram.merge a (Histogram.create ~lo:0.0 ~hi:10.0 ~bins:4)))

let test_histogram_merge_quantile_consistent () =
  (* quantile over a merge equals quantile over the union stream. *)
  let a = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:50 in
  let b = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:50 in
  let u = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:50 in
  let rng = Rng.create 7 in
  for _ = 1 to 500 do
    let x = Rng.float rng 1.0 in
    Histogram.add a x;
    Histogram.add u x
  done;
  for _ = 1 to 300 do
    let x = Rng.float rng 1.0 in
    Histogram.add b x;
    Histogram.add u x
  done;
  let m = Histogram.merge a b in
  List.iter
    (fun q ->
      check_float
        (Printf.sprintf "q=%g" q)
        (Histogram.quantile u q) (Histogram.quantile m q))
    [ 0.05; 0.5; 0.95 ]

(* ------------------------------------------------------------------ *)
(* Text_table                                                           *)

let test_table_renders () =
  let t = Text_table.create [ "a"; "bb" ] in
  Text_table.add_row t [ "x"; "y" ];
  let s = Text_table.render t in
  check_bool "has header" true (String.length s > 0);
  check_bool "contains row" true (String.length s >= String.length "a  bb\n")

let test_table_pads_short_rows () =
  let t = Text_table.create [ "a"; "b"; "c" ] in
  Text_table.add_row t [ "only" ];
  let lines = String.split_on_char '\n' (Text_table.render t) in
  check_int "lines (header, sep, row, trailing)" 4 (List.length lines)

let test_table_rejects_long_rows () =
  let t = Text_table.create [ "a" ] in
  Alcotest.check_raises "too many" (Invalid_argument "Text_table.add_row: too many cells")
    (fun () -> Text_table.add_row t [ "1"; "2" ])

let test_table_cells () =
  Alcotest.(check string) "cell_f" "1.500" (Text_table.cell_f 1.5);
  Alcotest.(check string) "cell_f decimals" "1.5" (Text_table.cell_f ~decimals:1 1.5);
  Alcotest.(check string) "cell_pct" "53.0%" (Text_table.cell_pct 0.53)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "ds_heap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "pop_min_exn empty" `Quick test_heap_pop_min_exn_empty;
          Alcotest.test_case "sorted drain" `Quick test_heap_sorted_drain;
          Alcotest.test_case "min_elt stable" `Quick test_heap_min_elt_stable;
          Alcotest.test_case "to_sorted_list preserves" `Quick test_heap_to_sorted_list_preserves;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "iter" `Quick test_heap_iter_counts;
          Alcotest.test_case "custom cmp" `Quick test_heap_custom_cmp;
          q prop_heap_drains_sorted;
          q prop_heap_is_permutation;
          q prop_heap_interleaved;
        ] );
      ( "fheap",
        [
          Alcotest.test_case "empty" `Quick test_fheap_empty;
          Alcotest.test_case "min agrees with pop" `Quick test_fheap_min_agrees_with_pop;
          q prop_fheap_pop_order_matches_reference;
          q prop_fheap_tie_uid_stability;
          q prop_fheap_interleaved;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "uniform bounds" `Quick test_rng_uniform_bounds;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int hits all values" `Quick test_rng_int_all_values_hit;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "lognormal positive" `Quick test_rng_lognormal_positive;
          Alcotest.test_case "laplace symmetry" `Quick test_rng_laplace_symmetry;
          Alcotest.test_case "invalid args" `Quick test_rng_invalid_args;
        ] );
      ( "stats",
        [
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "known values" `Quick test_stats_known_values;
          Alcotest.test_case "single" `Quick test_stats_single;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "merge empty" `Quick test_stats_merge_empty;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentile interpolates" `Quick test_percentile_interpolates;
          Alcotest.test_case "percentile errors" `Quick test_percentile_errors;
          q prop_stats_mean_matches_naive;
        ] );
      ( "running_min",
        [
          Alcotest.test_case "initial" `Quick test_running_min_initial;
          Alcotest.test_case "monotone up" `Quick test_running_min_monotone_up;
          Alcotest.test_case "vee shape" `Quick test_running_min_vee;
          Alcotest.test_case "drawdown keeps max" `Quick test_running_min_drawdown_keeps_max;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "iter/fold" `Quick test_vec_iter_fold;
          Alcotest.test_case "to_list/array" `Quick test_vec_to_list_array;
          Alcotest.test_case "clear" `Quick test_vec_clear;
          Alcotest.test_case "binary search" `Quick test_vec_binary_search;
          q prop_vec_binary_search_matches_linear;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "bounds" `Quick test_histogram_bounds;
          Alcotest.test_case "render" `Quick test_histogram_render;
          Alcotest.test_case "validation" `Quick test_histogram_validation;
          Alcotest.test_case "quantile uniform" `Quick test_histogram_quantile_uniform;
          Alcotest.test_case "quantile edges" `Quick test_histogram_quantile_edges;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "merge/quantile consistent" `Quick
            test_histogram_merge_quantile_consistent;
        ] );
      ( "text_table",
        [
          Alcotest.test_case "renders" `Quick test_table_renders;
          Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "rejects long rows" `Quick test_table_rejects_long_rows;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
    ]
